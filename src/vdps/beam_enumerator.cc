#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "vdps/enumeration_store.h"
#include "vdps/generators.h"
#include "vdps/route_arena.h"

namespace fta {
namespace {

/// Beam items per extension chunk. The chunk partition — and therefore the
/// candidate concatenation order — depends only on the beam size, never on
/// the thread count, so the level's candidate list is byte-identical to a
/// serial scan.
constexpr size_t kBeamChunk = 16;

/// One partial delivery-point sequence surviving the beam. The route lives
/// in the shared arena; `last` caches its final delivery point.
struct BeamItem {
  uint32_t node = RouteArena::kNone;
  uint32_t last = 0;
  double arrival = 0.0;  // center-origin arrival at the last point
  double slack = 0.0;    // max tolerable start offset so far
  double reward = 0.0;
};

/// A candidate extension produced by the level scan. Arena nodes are
/// allocated only for the candidates that survive the shrink, so dropped
/// candidates cost 32 stack-local bytes instead of a heap route copy.
struct PendingChild {
  uint32_t parent = RouteArena::kNone;  // kNone for level-1 roots
  uint32_t dp = 0;
  double arrival = 0.0;
  double slack = 0.0;
  double reward = 0.0;
  /// Beam score: payoff rate of the partial sequence. Higher is more
  /// promising — workers ultimately rank VDPSs by reward / time.
  double Score() const { return reward / std::max(arrival, 1e-12); }
};

}  // namespace

GenerationResult GenerateCVdpsBeam(const Instance& instance,
                                   const VdpsConfig& config, size_t beam_width,
                                   ThreadPool* pool) {
  FTA_CHECK_MSG(beam_width > 0, "beam_width must be positive");
  GenerationResult result;
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  if (n == 0) return result;

  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());
  RadiusAdjacency adj;
  const bool pruned = !std::isinf(config.epsilon);
  if (pruned) {
    Stopwatch adj_sw;
    FTA_SPAN("vdps/adjacency");
    const GridIndex grid(instance.DeliveryPointLocations(), config.epsilon);
    adj = grid.BuildRadiusAdjacency(config.epsilon, pool);
    result.counters.adjacency_ms = adj_sw.ElapsedMillis();
    result.counters.adjacency_pairs = adj.num_pairs();
  }
  const uint32_t cap =
      config.max_set_size == 0 ? n : std::min(config.max_set_size, n);

  Stopwatch enum_sw;
  // Single shard: the beam itself is the unit of parallelism (per-level
  // extension chunks); set store, arena, and recording stay serial.
  std::vector<vdps_internal::EnumerationShard> shards(1);
  vdps_internal::EnumerationShard& store = shards[0];
  GenerationCounters& c = store.counters;

  Route scratch_route;
  std::vector<uint32_t> scratch_key;
  const auto record = [&](const BeamItem& item) {
    ++c.states_expanded;
    store.arena.Materialize(item.node, scratch_route);
    scratch_key = scratch_route;
    std::sort(scratch_key.begin(), scratch_key.end());
    // Reused scratch buffers: copies, but no per-record allocations. The
    // pre-arena implementation allocated both.
    c.scratch_bytes_copied += 2 * scratch_key.size() * sizeof(uint32_t);
    c.legacy_route_bytes += 2 * scratch_key.size() * sizeof(uint32_t);
    c.legacy_route_allocs += 2;
    bool created = false;
    vdps_internal::SetRecord* rec =
        store.Intern(scratch_key, config.max_entries, &created);
    if (rec == nullptr) return;  // entry cap hit; store.truncated is set
    if (created) {
      c.legacy_route_bytes += scratch_key.size() * sizeof(uint32_t);
      ++c.legacy_route_allocs;
      rec->total_reward = item.reward;
    }
    rec->options.push_back(
        vdps_internal::RawOption{item.arrival, item.slack, item.node, 0});
    ++c.options_recorded;
  };

  bool shrink_truncated = false;
  const auto shrink = [&](std::vector<PendingChild>& level) {
    if (level.size() <= beam_width) return;
    std::nth_element(level.begin(),
                     level.begin() + static_cast<ptrdiff_t>(beam_width),
                     level.end(), [](const PendingChild& a,
                                     const PendingChild& b) {
                       return a.Score() > b.Score();
                     });
    level.resize(beam_width);
    shrink_truncated = true;  // some partial sequences were dropped
  };

  /// Allocates arena nodes for the shrink survivors (in candidate order,
  /// so node ids match a serial run), records them, and forms the beam.
  const auto admit = [&](const std::vector<PendingChild>& level,
                         std::vector<BeamItem>& out) {
    out.clear();
    out.reserve(level.size());
    for (const PendingChild& p : level) {
      BeamItem item;
      item.node = store.arena.Push(p.parent, p.dp);
      item.last = p.dp;
      item.arrival = p.arrival;
      item.slack = p.slack;
      item.reward = p.reward;
      record(item);
      out.push_back(item);
    }
  };

  // Level 1: every feasible center -> dp start (the first hop is never
  // ε-pruned, matching the exhaustive enumerator).
  FTA_SPAN("vdps/enumerate");
  std::vector<PendingChild> pending;
  for (uint32_t j = 0; j < n; ++j) {
    const double arr = dm.FromOrigin(j);
    const double slack = instance.delivery_point(j).earliest_expiry() - arr;
    if (slack < 0.0) continue;
    pending.push_back(PendingChild{RouteArena::kNone, j, arr, slack,
                                   instance.delivery_point(j).total_reward()});
  }
  // The pre-arena implementation allocated a route per candidate before
  // shrinking (level-length payload each).
  c.legacy_route_allocs += pending.size();
  c.legacy_route_bytes += pending.size() * sizeof(uint32_t);
  shrink(pending);
  std::vector<BeamItem> beam;
  admit(pending, beam);

  for (uint32_t level = 2; level <= cap && !beam.empty(); ++level) {
    FTA_SPAN("vdps/beam_level");
    // Extension scan. Reads the arena (dedup walks) but never writes it —
    // survivors get their nodes only in admit() — so fixed-order chunks of
    // the beam can scan concurrently.
    const auto extend_item = [&](const BeamItem& item,
                                 std::vector<PendingChild>& out) {
      const auto try_extend = [&](uint32_t j) {
        if (store.arena.Contains(item.node, j)) return;
        const double arr = item.arrival + dm.Between(item.last, j);
        const double slk = std::min(
            item.slack, instance.delivery_point(j).earliest_expiry() - arr);
        if (slk < 0.0) return;
        out.push_back(PendingChild{
            item.node, j, arr, slk,
            item.reward + instance.delivery_point(j).total_reward()});
      };
      if (pruned) {
        for (const uint32_t* p = adj.begin(item.last); p != adj.end(item.last);
             ++p) {
          try_extend(*p);
        }
      } else {
        for (uint32_t j = 0; j < n; ++j) try_extend(j);
      }
    };

    pending.clear();
    if (pool != nullptr && pool->num_threads() > 1 && beam.size() > 1) {
      std::vector<std::vector<PendingChild>> chunk_out(
          ThreadPool::NumChunks(beam.size(), kBeamChunk));
      pool->RunChunked(beam.size(), kBeamChunk,
                       [&](size_t chunk, size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           extend_item(beam[i], chunk_out[chunk]);
                         }
                       });
      for (const auto& out : chunk_out) {
        pending.insert(pending.end(), out.begin(), out.end());
      }
    } else {
      for (const BeamItem& item : beam) extend_item(item, pending);
    }
    c.legacy_route_allocs += pending.size();
    c.legacy_route_bytes += pending.size() * level * sizeof(uint32_t);

    shrink(pending);
    std::vector<BeamItem> next;
    admit(pending, next);
    beam = std::move(next);
  }
  result.counters.enumerate_ms = enum_sw.ElapsedMillis();

  Stopwatch fin_sw;
  {
    FTA_SPAN("vdps/finalize");
    vdps_internal::FinalizeShards(shards, config, result);
  }
  result.counters.finalize_ms = fin_sw.ElapsedMillis();
  result.truncated = result.truncated || shrink_truncated;
  result.adjacency = std::move(adj);
  return result;
}

}  // namespace fta
