#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

/// One partial delivery-point sequence in the beam.
struct BeamItem {
  Route route;
  double arrival = 0.0;   // center-origin arrival at the last point
  double slack = 0.0;     // max tolerable start offset so far
  double reward = 0.0;
  /// Beam score: payoff rate of the partial sequence. Higher is more
  /// promising — workers ultimately rank VDPSs by reward / time.
  double Score() const {
    return reward / std::max(arrival, 1e-12);
  }
};

/// FNV-1a over a sorted id vector (same as the exhaustive enumerator).
struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

GenerationResult GenerateCVdpsBeam(const Instance& instance,
                                   const VdpsConfig& config,
                                   size_t beam_width) {
  FTA_CHECK_MSG(beam_width > 0, "beam_width must be positive");
  GenerationResult result;
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  if (n == 0) return result;

  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());
  const GridIndex grid(instance.DeliveryPointLocations(),
                       std::isinf(config.epsilon) ? 0.0 : config.epsilon);
  const uint32_t cap =
      config.max_set_size == 0 ? n : std::min(config.max_set_size, n);

  std::unordered_map<std::vector<uint32_t>, CVdpsEntry, VectorHash> entries;
  bool truncated = false;
  const auto record = [&](const BeamItem& item) {
    std::vector<uint32_t> key = item.route;
    std::sort(key.begin(), key.end());
    auto it = entries.find(key);
    if (it == entries.end()) {
      if (config.max_entries > 0 && entries.size() >= config.max_entries) {
        truncated = true;
        return;
      }
      CVdpsEntry entry;
      entry.dps = key;
      entry.total_reward = item.reward;
      it = entries.emplace(std::move(key), std::move(entry)).first;
    }
    SequenceOption opt;
    opt.route = item.route;
    opt.center_time = item.arrival;
    opt.slack = item.slack;
    InsertParetoOption(it->second.options, std::move(opt),
                       config.max_pareto);
  };

  // Level 1: every feasible center -> dp start (first hop is never
  // ε-pruned, matching the exhaustive enumerator).
  std::vector<BeamItem> beam;
  for (uint32_t j = 0; j < n; ++j) {
    const double arr = dm.FromOrigin(j);
    const double slack = instance.delivery_point(j).earliest_expiry() - arr;
    if (slack < 0.0) continue;
    BeamItem item;
    item.route = {j};
    item.arrival = arr;
    item.slack = slack;
    item.reward = instance.delivery_point(j).total_reward();
    beam.push_back(std::move(item));
  }

  const auto shrink = [&](std::vector<BeamItem>& level) {
    if (level.size() <= beam_width) return;
    std::nth_element(level.begin(),
                     level.begin() + static_cast<ptrdiff_t>(beam_width),
                     level.end(), [](const BeamItem& a, const BeamItem& b) {
                       return a.Score() > b.Score();
                     });
    level.resize(beam_width);
    truncated = true;  // some partial sequences were dropped
  };

  shrink(beam);
  for (const BeamItem& item : beam) record(item);

  for (uint32_t level = 2; level <= cap && !beam.empty(); ++level) {
    std::vector<BeamItem> next;
    for (const BeamItem& item : beam) {
      const uint32_t last = item.route.back();
      const auto extend = [&](uint32_t j) {
        for (uint32_t r : item.route) {
          if (r == j) return;
        }
        const double arr = item.arrival + dm.Between(last, j);
        const double slack = std::min(
            item.slack, instance.delivery_point(j).earliest_expiry() - arr);
        if (slack < 0.0) return;
        BeamItem child;
        child.route = item.route;
        child.route.push_back(j);
        child.arrival = arr;
        child.slack = slack;
        child.reward =
            item.reward + instance.delivery_point(j).total_reward();
        next.push_back(std::move(child));
      };
      if (std::isinf(config.epsilon)) {
        for (uint32_t j = 0; j < n; ++j) extend(j);
      } else {
        const Point& at = instance.delivery_point(last).location();
        for (uint32_t j : grid.RadiusQuery(at, config.epsilon)) extend(j);
      }
    }
    shrink(next);
    for (const BeamItem& item : next) record(item);
    beam = std::move(next);
  }

  result.entries.reserve(entries.size());
  for (auto& [key, entry] : entries) {
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const CVdpsEntry& a, const CVdpsEntry& b) {
              if (a.dps.size() != b.dps.size())
                return a.dps.size() < b.dps.size();
              return a.dps < b.dps;
            });
  result.truncated = truncated;
  return result;
}

}  // namespace fta
