// Incremental catalog maintenance: VdpsCatalog::ApplyDelta patches a
// generated catalog to a churned instance instead of regenerating it.
//
// The bit-identity argument (pinned by tests/stream_identity_test.cc):
//
//   * A C-VDPS over a set S is intrinsic to S — its feasibility, its
//     sequence set, and every retained (center_time, slack) pair depend
//     only on S's members, the center, and the travel model. Removing
//     other delivery points can therefore never change a surviving entry;
//     removal is a pure filter.
//
//   * Survivor ids renumber through a strictly increasing map (old order
//     preserved, holes closed), which preserves every sorted structure in
//     the catalog: entry.dps stay ascending, the (size asc, lex asc) entry
//     order is untouched, and each worker's (payoff desc, entry asc)
//     strategy order survives because payoffs are unchanged and entry ids
//     remap monotonically.
//
//   * Every C-VDPS containing an added delivery point is realized by a
//     deadline-feasible sequence, i.e. a path in the ε-adjacency graph, so
//     all of its members lie within max_set_size - 1 hops of the added
//     point. Enumerating the BFS ball around the additions as a restricted
//     sub-instance (sorted members, strictly increasing local id map)
//     replays the exact serial DFS the full generator would run for those
//     sets: same roots in the same relative order, same ascending
//     adjacency-row extensions, same float arithmetic on the same point
//     pairs, hence the same raw-option order into the same Pareto
//     selection.
//
//   * Sorted merges under the shared total orders (EntryOrder,
//     StrategyOrder — see catalog_internal.h) equal a full re-sort, so the
//     merged catalog is byte-for-byte the one Generate(new_instance,
//     config()) builds.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geo/grid_index.h"
#include "geo/point.h"
#include "model/instance.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "vdps/catalog.h"
#include "vdps/catalog_internal.h"
#include "vdps/generators.h"

namespace fta {
namespace {

/// Sentinel new-id for a removed element in an old → new id map.
constexpr uint32_t kRemovedId = 0xffffffffu;

/// Mirrors a finished delta application into the process-wide metrics
/// registry (counter adds only; wall time to a histogram).
void PublishDelta(const DeltaCounters& d) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& deltas = reg.GetCounter("vdps/deltas_applied");
  static obs::Counter& entries_removed =
      reg.GetCounter("vdps/delta_entries_removed");
  static obs::Counter& entries_added =
      reg.GetCounter("vdps/delta_entries_added");
  static obs::Counter& neighborhood =
      reg.GetCounter("vdps/delta_neighborhood_dps");
  static obs::Histogram& wall = reg.GetHistogram(
      "vdps/delta_wall_ms", obs::ExponentialBounds(0.25, 4.0, 8));
  deltas.Increment();
  entries_removed.Add(d.entries_removed);
  entries_added.Add(d.entries_added);
  neighborhood.Add(d.neighborhood_dps);
  wall.Observe(d.wall_ms);
}

/// Old → new id map for a removal list (strictly ascending old indices):
/// survivors keep their relative order and close the holes; removed slots
/// map to kRemovedId.
std::vector<uint32_t> BuildIdMap(size_t old_count,
                                 const std::vector<uint32_t>& removed) {
  std::vector<uint32_t> map(old_count);
  size_t r = 0;
  uint32_t next = 0;
  for (size_t old = 0; old < old_count; ++old) {
    if (r < removed.size() && removed[r] == old) {
      map[old] = kRemovedId;
      ++r;
    } else {
      map[old] = next++;
    }
  }
  return map;
}

Status CheckRemovalList(const std::vector<uint32_t>& removed, size_t count,
                        const char* what) {
  for (size_t i = 0; i < removed.size(); ++i) {
    if (removed[i] >= count) {
      return Status::InvalidArgument(StrFormat(
          "removed %s index %u out of range (count %zu)", what, removed[i],
          count));
    }
    if (i > 0 && removed[i - 1] >= removed[i]) {
      return Status::InvalidArgument(
          StrFormat("removed %s indices not strictly ascending", what));
    }
  }
  return Status::Ok();
}

/// Remaps a sorted-or-route id sequence in place through `map`. Every id
/// must survive (checked by the caller via the intersection test).
void RemapIds(std::vector<uint32_t>& ids, const std::vector<uint32_t>& map) {
  for (uint32_t& id : ids) id = map[id];
}

bool AnyRemoved(const std::vector<uint32_t>& ids,
                const std::vector<uint32_t>& map) {
  for (uint32_t id : ids) {
    if (map[id] == kRemovedId) return true;
  }
  return false;
}

}  // namespace

void DeltaCounters::Merge(const DeltaCounters& o) {
  deltas_applied += o.deltas_applied;
  workers_removed += o.workers_removed;
  workers_added += o.workers_added;
  dps_removed += o.dps_removed;
  dps_added += o.dps_added;
  entries_removed += o.entries_removed;
  entries_added += o.entries_added;
  strategies_removed += o.strategies_removed;
  strategies_added += o.strategies_added;
  neighborhood_dps += o.neighborhood_dps;
  subenum_states += o.subenum_states;
  adjacency_ms += o.adjacency_ms;
  enumerate_ms += o.enumerate_ms;
  strategies_ms += o.strategies_ms;
  index_ms += o.index_ms;
  wall_ms += o.wall_ms;
}

Status VdpsCatalog::ApplyDelta(const Instance& new_instance,
                               const CatalogDeltaPlan& plan,
                               DeltaCounters* counters) {
  FTA_SPAN("vdps/apply_delta");
  Stopwatch wall;

  // ---- Gates: every check precedes the first mutation, so an error
  // leaves the catalog exactly as it was. ----
  if (config_.beam_width > 0) {
    return Status::FailedPrecondition(
        "ApplyDelta does not support beam-search catalogs: the beam's "
        "global top-k survivor selection is not locally patchable");
  }
  if (truncated_ || config_.max_entries > 0) {
    return Status::FailedPrecondition(
        "ApplyDelta does not support truncated/max_entries catalogs: the "
        "truncation point is enumeration-path-dependent");
  }
  const size_t old_workers = strategies_.size();
  const size_t old_dps = touching_.size();
  if (!std::isinf(config_.epsilon) && old_dps > 0 &&
      adjacency_.num_points() != old_dps) {
    return Status::FailedPrecondition(
        "catalog has no ε-adjacency to patch; was it built by Generate()?");
  }
  if (Status s = CheckRemovalList(plan.removed_workers, old_workers, "worker");
      !s.ok()) {
    return s;
  }
  if (Status s = CheckRemovalList(plan.removed_dps, old_dps, "delivery point");
      !s.ok()) {
    return s;
  }
  const size_t surviving_workers = old_workers - plan.removed_workers.size();
  const size_t surviving_dps = old_dps - plan.removed_dps.size();
  if (new_instance.num_workers() != surviving_workers + plan.added_workers) {
    return Status::InvalidArgument(StrFormat(
        "plan implies %zu workers, new instance has %zu",
        surviving_workers + plan.added_workers, new_instance.num_workers()));
  }
  if (new_instance.num_delivery_points() != surviving_dps + plan.added_dps) {
    return Status::InvalidArgument(
        StrFormat("plan implies %zu delivery points, new instance has %zu",
                  surviving_dps + plan.added_dps,
                  new_instance.num_delivery_points()));
  }

  const std::vector<uint32_t> dp_map = BuildIdMap(old_dps, plan.removed_dps);
  const std::vector<uint32_t> worker_map =
      BuildIdMap(old_workers, plan.removed_workers);

  DeltaCounters scratch;
  DeltaCounters& d = counters != nullptr ? *counters : scratch;
  d = DeltaCounters{};
  d.deltas_applied = 1;
  d.workers_removed = plan.removed_workers.size();
  d.workers_added = plan.added_workers;
  d.dps_removed = plan.removed_dps.size();
  d.dps_added = plan.added_dps;
  uint64_t old_strategies = 0;
  for (const auto& sts : strategies_) old_strategies += sts.size();

  // ---- 1. Entry filter + renumber: drop every entry touching a removed
  // delivery point, remap survivor ids (strictly increasing map, so the
  // (size asc, lex asc) entry order is preserved without re-sorting). ----
  std::vector<uint32_t> entry_map(entries_.size(), kRemovedId);
  {
    size_t out = 0;
    for (size_t e = 0; e < entries_.size(); ++e) {
      if (AnyRemoved(entries_[e].dps, dp_map)) continue;
      entry_map[e] = static_cast<uint32_t>(out);
      if (out != e) entries_[out] = std::move(entries_[e]);
      if (!plan.removed_dps.empty()) {
        RemapIds(entries_[out].dps, dp_map);
        for (SequenceOption& opt : entries_[out].options) {
          RemapIds(opt.route, dp_map);
        }
      }
      ++out;
    }
    d.entries_removed = entries_.size() - out;
    entries_.resize(out);
  }

  // ---- 2. Worker removal + strategy filter under the entry renumber.
  // Payoffs are untouched and entry ids remap monotonically, so each
  // surviving list stays sorted by (payoff desc, entry asc). ----
  {
    size_t out = 0;
    for (size_t w = 0; w < strategies_.size(); ++w) {
      if (worker_map[w] == kRemovedId) continue;
      if (out != w) strategies_[out] = std::move(strategies_[w]);
      std::vector<WorkerStrategy>& sts = strategies_[out];
      size_t kept = 0;
      for (size_t i = 0; i < sts.size(); ++i) {
        if (entry_map[sts[i].entry_id] == kRemovedId) continue;
        if (kept != i) sts[kept] = std::move(sts[i]);
        sts[kept].entry_id = entry_map[sts[kept].entry_id];
        if (!plan.removed_dps.empty()) RemapIds(sts[kept].route, dp_map);
        ++kept;
      }
      sts.resize(kept);
      ++out;
    }
    strategies_.resize(out);
  }
  uint64_t kept_strategies = 0;
  for (const auto& sts : strategies_) kept_strategies += sts.size();
  d.strategies_removed = old_strategies - kept_strategies;

  // ---- 3. ε-adjacency CSR patch: filter + renumber survivor rows, splice
  // the additions in (added ids are all larger than survivor ids, so they
  // append at row tails in ascending order), brute-force rows for the
  // added points with GridIndex::RadiusQuery's exact predicate. ----
  const size_t new_dps = new_instance.num_delivery_points();
  const bool pruned = !std::isinf(config_.epsilon);
  if (pruned) {
    Stopwatch adj_sw;
    FTA_SPAN("vdps/delta_adjacency");
    const std::vector<Point> points = new_instance.DeliveryPointLocations();
    const double r2 = config_.epsilon * config_.epsilon;
    // added_rows[k]: full neighbor row of added dp (surviving_dps + k).
    std::vector<std::vector<uint32_t>> added_rows(plan.added_dps);
    for (size_t k = 0; k < plan.added_dps; ++k) {
      const Point& center = points[surviving_dps + k];
      for (uint32_t q = 0; q < new_dps; ++q) {
        if (SquaredDistance(points[q], center) <= r2) {
          added_rows[k].push_back(q);
        }
      }
    }
    RadiusAdjacency next;
    next.offsets.reserve(new_dps + 1);
    next.offsets.push_back(0);
    next.neighbors.reserve(adjacency_.neighbors.size() +
                           2 * plan.added_dps * 8);
    for (size_t old = 0; old < old_dps; ++old) {
      if (dp_map[old] == kRemovedId) continue;
      for (const uint32_t* p = adjacency_.begin(static_cast<uint32_t>(old));
           p != adjacency_.end(static_cast<uint32_t>(old)); ++p) {
        if (dp_map[*p] != kRemovedId) next.neighbors.push_back(dp_map[*p]);
      }
      // Reverse edges into this survivor's row from each added point, in
      // ascending added id order (symmetric predicate: the squared
      // distance folds (a-b) vs (b-a), whose squares are identical).
      const uint32_t me = dp_map[old];
      for (size_t k = 0; k < plan.added_dps; ++k) {
        if (std::binary_search(added_rows[k].begin(), added_rows[k].end(),
                               me)) {
          next.neighbors.push_back(static_cast<uint32_t>(surviving_dps + k));
        }
      }
      next.offsets.push_back(static_cast<uint32_t>(next.neighbors.size()));
    }
    for (size_t k = 0; k < plan.added_dps; ++k) {
      next.neighbors.insert(next.neighbors.end(), added_rows[k].begin(),
                            added_rows[k].end());
      next.offsets.push_back(static_cast<uint32_t>(next.neighbors.size()));
    }
    adjacency_ = std::move(next);
    d.adjacency_ms = adj_sw.ElapsedMillis();
  } else {
    adjacency_ = RadiusAdjacency{};
  }

  // ---- 4. Neighborhood sub-enumeration for the added delivery points:
  // every new C-VDPS holds at least one added point, and all of its
  // members lie within cap - 1 ε-hops of one, so enumerating the BFS ball
  // as a restricted sub-instance finds each exactly once. ----
  std::vector<CVdpsEntry> fresh;
  if (plan.added_dps > 0) {
    Stopwatch enum_sw;
    FTA_SPAN("vdps/delta_enumerate");
    const uint32_t cap =
        config_.max_set_size == 0
            ? static_cast<uint32_t>(new_dps)
            : std::min(config_.max_set_size, static_cast<uint32_t>(new_dps));
    std::vector<uint32_t> hood;  // new ids, built sorted below
    if (pruned) {
      std::vector<uint8_t> seen(new_dps, 0);
      std::vector<uint32_t> frontier;
      for (size_t k = 0; k < plan.added_dps; ++k) {
        const uint32_t id = static_cast<uint32_t>(surviving_dps + k);
        seen[id] = 1;
        frontier.push_back(id);
      }
      for (uint32_t depth = 1; depth < cap && !frontier.empty(); ++depth) {
        std::vector<uint32_t> next_frontier;
        for (uint32_t v : frontier) {
          for (const uint32_t* p = adjacency_.begin(v);
               p != adjacency_.end(v); ++p) {
            if (!seen[*p]) {
              seen[*p] = 1;
              next_frontier.push_back(*p);
            }
          }
        }
        frontier = std::move(next_frontier);
      }
      for (uint32_t id = 0; id < new_dps; ++id) {
        if (seen[id]) hood.push_back(id);
      }
    } else {
      hood.resize(new_dps);
      for (uint32_t id = 0; id < new_dps; ++id) hood[id] = id;
    }
    d.neighborhood_dps = hood.size();

    // Restricted sub-instance over the (sorted) neighborhood: the local id
    // map is strictly increasing, so the serial DFS replays the full
    // generator's relative discovery order for every set inside the ball.
    std::vector<DeliveryPoint> sub_dps;
    sub_dps.reserve(hood.size());
    for (uint32_t id : hood) {
      sub_dps.push_back(new_instance.delivery_point(id));
    }
    const Instance sub_instance(new_instance.center(), std::move(sub_dps),
                                {}, new_instance.travel());
    VdpsConfig sub_config = config_;
    sub_config.num_threads = 1;  // deltas are small; keep the DFS serial
    GenerationResult sub =
        GenerateCVdpsSequences(sub_instance, sub_config, nullptr);
    d.subenum_states = sub.counters.states_expanded;

    fresh.reserve(sub.entries.size());
    for (CVdpsEntry& entry : sub.entries) {
      for (uint32_t& id : entry.dps) id = hood[id];
      // Keep only sets touching an added point (ids past the survivors);
      // the rest were feasible before the delta and already live in
      // entries_, byte-identically.
      if (entry.dps.back() < surviving_dps) continue;
      for (SequenceOption& opt : entry.options) {
        for (uint32_t& id : opt.route) id = hood[id];
      }
      fresh.push_back(std::move(entry));
    }
    d.entries_added = fresh.size();
    d.enumerate_ms = enum_sw.ElapsedMillis();
  }

  // ---- 5. Merge the fresh entries into the survivor list under the
  // shared EntryOrder (both inputs sorted; ids are disjoint because a
  // fresh set contains an added point no old set could). ----
  std::vector<uint32_t> final_of_survivor(entries_.size());
  std::vector<uint32_t> final_of_fresh(fresh.size());
  if (!fresh.empty()) {
    const vdps_internal::EntryOrder less;
    std::vector<CVdpsEntry> merged;
    merged.reserve(entries_.size() + fresh.size());
    size_t i = 0;
    size_t j = 0;
    while (i < entries_.size() || j < fresh.size()) {
      const bool take_old =
          j >= fresh.size() ||
          (i < entries_.size() && less(entries_[i], fresh[j]));
      if (take_old) {
        final_of_survivor[i] = static_cast<uint32_t>(merged.size());
        merged.push_back(std::move(entries_[i++]));
      } else {
        final_of_fresh[j] = static_cast<uint32_t>(merged.size());
        merged.push_back(std::move(fresh[j++]));
      }
    }
    entries_ = std::move(merged);
  } else {
    for (size_t i = 0; i < final_of_survivor.size(); ++i) {
      final_of_survivor[i] = static_cast<uint32_t>(i);
    }
  }

  // ---- 6. Strategy patch: remap surviving strategies to final entry ids
  // (monotone again), evaluate only the fresh entries for surviving
  // workers, build added workers from scratch, and merge per worker under
  // the shared StrategyOrder — a strict total order, so the merge equals
  // Generate's full std::sort. ----
  Stopwatch strat_sw;
  {
    FTA_SPAN("vdps/delta_strategies");
    std::vector<WorkerStrategy> additions;
    for (size_t w = 0; w < strategies_.size(); ++w) {
      std::vector<WorkerStrategy>& sts = strategies_[w];
      for (WorkerStrategy& st : sts) {
        st.entry_id = final_of_survivor[st.entry_id];
      }
      if (final_of_fresh.empty()) continue;
      const double offset = new_instance.WorkerToCenterTime(w);
      const uint32_t max_dp = new_instance.worker(w).max_delivery_points;
      additions.clear();
      WorkerStrategy st;
      for (uint32_t final_id : final_of_fresh) {
        if (vdps_internal::MakeStrategy(entries_[final_id], final_id, offset,
                                        max_dp, &st)) {
          additions.push_back(std::move(st));
        }
      }
      std::sort(additions.begin(), additions.end(),
                vdps_internal::StrategyOrder{});
      const size_t boundary = sts.size();
      sts.insert(sts.end(), additions.begin(), additions.end());
      std::inplace_merge(sts.begin(),
                         sts.begin() + static_cast<ptrdiff_t>(boundary),
                         sts.end(), vdps_internal::StrategyOrder{});
    }
    strategies_.resize(surviving_workers + plan.added_workers);
    for (size_t w = surviving_workers; w < strategies_.size(); ++w) {
      const double offset = new_instance.WorkerToCenterTime(w);
      const uint32_t max_dp = new_instance.worker(w).max_delivery_points;
      std::vector<WorkerStrategy>& out = strategies_[w];
      WorkerStrategy st;
      for (uint32_t e = 0; e < entries_.size(); ++e) {
        if (vdps_internal::MakeStrategy(entries_[e], e, offset, max_dp,
                                        &st)) {
          out.push_back(std::move(st));
        }
      }
      std::sort(out.begin(), out.end(), vdps_internal::StrategyOrder{});
    }
  }
  d.strategies_ms = strat_sw.ElapsedMillis();
  uint64_t total_strategies = 0;
  for (const auto& sts : strategies_) total_strategies += sts.size();
  d.strategies_added = total_strategies - kept_strategies;

  // ---- 7. Inverted index rebuild: the serial (worker asc, strategy asc)
  // append order of Generate, over the patched strategy lists. Linear in
  // the index size — cheap next to enumeration, and exactly the build
  // order BestResponseEngine::Mark relies on. ----
  Stopwatch index_sw;
  {
    FTA_SPAN("vdps/delta_index");
    touching_.assign(new_dps, {});
    for (uint32_t w = 0; w < strategies_.size(); ++w) {
      for (size_t i = 0; i < strategies_[w].size(); ++i) {
        for (uint32_t dp : entries_[strategies_[w][i].entry_id].dps) {
          touching_[dp].push_back(StrategyRef{w, static_cast<int32_t>(i)});
        }
      }
    }
  }
  d.index_ms = index_sw.ElapsedMillis();

  RebuildStrategyPayoffs();

  // Phase-boundary contract, same as Generate: the patched catalog is
  // deep-checked before any solver sees it.
  FTA_DCHECK_OK(ValidateInvariants(new_instance));
  d.wall_ms = wall.ElapsedMillis();
  PublishDelta(d);
  return Status::Ok();
}

}  // namespace fta
