#ifndef FTA_VDPS_ROUTE_ARENA_H_
#define FTA_VDPS_ROUTE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/route.h"

namespace fta {

/// Prefix-sharing storage for center-origin delivery point sequences.
///
/// The sequence enumerators extend a partial route one delivery point at a
/// time, so the set of explored routes forms a tree rooted at the center.
/// Instead of copying the whole `Route` vector on every extension (an O(k)
/// copy plus a heap allocation per feasible state), each state stores one
/// 8-byte node `(parent, dp)`; the full route materializes on demand by
/// walking the parent chain — only for the options that actually survive
/// Pareto selection.
///
/// Nodes are append-only and identified by dense `uint32_t` handles, so an
/// arena is trivially shareable read-only across threads once its writer
/// is done appending. Each enumeration shard owns a private arena.
class RouteArena {
 public:
  /// Parent handle of a root node (a route of length 1).
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Appends the route `parent route + dp` and returns its handle.
  uint32_t Push(uint32_t parent, uint32_t dp) {
    nodes_.push_back(Node{parent, dp});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  uint32_t parent(uint32_t node) const { return nodes_[node].parent; }
  uint32_t dp(uint32_t node) const { return nodes_[node].dp; }

  size_t num_nodes() const { return nodes_.size(); }
  /// Heap footprint of the node storage.
  size_t bytes() const { return nodes_.capacity() * sizeof(Node); }

  void Reserve(size_t nodes) { nodes_.reserve(nodes); }

  /// Number of delivery points on the route ending at `node`.
  uint32_t Depth(uint32_t node) const;

  /// True if `dp` appears on the route ending at `node`. O(depth).
  bool Contains(uint32_t node, uint32_t dp) const;

  /// Writes the route ending at `node` into `out` in visit order
  /// (center-origin first hop at index 0). Replaces `out`'s contents.
  void Materialize(uint32_t node, Route& out) const;

  /// Convenience allocation-per-call variant of Materialize.
  Route Materialize(uint32_t node) const;

 private:
  struct Node {
    uint32_t parent;
    uint32_t dp;
  };
  std::vector<Node> nodes_;
};

}  // namespace fta

#endif  // FTA_VDPS_ROUTE_ARENA_H_
