#ifndef FTA_VDPS_CATALOG_H_
#define FTA_VDPS_CATALOG_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/grid_index.h"
#include "model/instance.h"
#include "model/route.h"
#include "util/math_util.h"
#include "util/status.h"

namespace fta {

/// Observability counters of one catalog generation run. Counts are exact
/// (incremented on the hot paths, summed across shards deterministically);
/// the `legacy_*` pair additionally models what the pre-arena
/// implementation would have spent — two route copies (sort key +
/// option route) per recorded sequence plus a full route copy per beam
/// extension — so benches can report the arena's allocation savings
/// without keeping the old code alive.
struct GenerationCounters {
  /// Feasible partial sequences visited (DP states for the exact engine).
  uint64_t states_expanded = 0;
  /// Raw (route, center_time, slack) options recorded into set stores.
  uint64_t options_recorded = 0;
  /// Pareto-frontier acceptances across all sets.
  uint64_t pareto_inserts = 0;
  /// Options removed from a frontier again (dominated later, or cap).
  uint64_t pareto_evictions = 0;
  /// C-VDPS entries produced.
  uint64_t entries = 0;
  /// Route-arena nodes allocated (== states for the sequence engines).
  uint64_t arena_nodes = 0;
  /// Total arena heap footprint in bytes.
  uint64_t arena_bytes = 0;
  /// Route payload bytes copied into heap vectors. For the arena engines
  /// every one of these survives into the final catalog (set keys that
  /// become entry.dps, materialized survivor routes); the exact reference
  /// engine also counts its DP-table route copies here.
  uint64_t route_bytes_copied = 0;
  /// Route vector heap allocations actually performed (same scope).
  uint64_t route_allocs = 0;
  /// Route payload bytes copied into reused scratch buffers (no heap
  /// allocation) — e.g. the beam's per-record key materialization.
  uint64_t scratch_bytes_copied = 0;
  /// Route payload bytes the pre-arena implementation would have copied.
  uint64_t legacy_route_bytes = 0;
  /// Route vector allocations the pre-arena implementation would have
  /// performed.
  uint64_t legacy_route_allocs = 0;
  /// Total ε-adjacency list length (0 when ε = ∞ disables the precompute).
  uint64_t adjacency_pairs = 0;
  /// Enumeration shards (1 when serial).
  uint64_t shards = 0;
  /// States expanded by the busiest shard — shard-imbalance numerator
  /// (perfect balance has max_shard_states ≈ states_expanded / shards).
  uint64_t max_shard_states = 0;
  /// Worker strategies materialized.
  uint64_t strategies = 0;

  double adjacency_ms = 0.0;
  double enumerate_ms = 0.0;
  double finalize_ms = 0.0;
  double strategies_ms = 0.0;
  /// End-to-end VdpsCatalog::Generate wall time.
  double wall_ms = 0.0;

  /// Accumulates another run's counters (multi-center aggregation): counts
  /// and times add, max_shard_states takes the max.
  void Merge(const GenerationCounters& o);
};

/// One center-origin delivery point sequence retained for a C-VDPS: the
/// route, its final arrival time when starting at the center at time 0, and
/// its slack (the largest start delay that still meets every deadline).
struct SequenceOption {
  Route route;
  /// Arrival at the last delivery point for a start offset of 0.
  double center_time = 0.0;
  /// max o >= 0 such that starting the route at time o still meets every
  /// deadline: o <= min_i (e_i - arrival_i).
  double slack = 0.0;
};

/// A Center-origin Valid Delivery Point Set (C-VDPS, Section IV): a set of
/// delivery points for which at least one deadline-feasible sequence from
/// the distribution center exists. Keeps a small Pareto frontier of
/// sequences over (center_time minimized, slack maximized): the fastest
/// sequence for nearby workers, plus slower but slack-richer orderings that
/// admit farther workers.
struct CVdpsEntry {
  /// The delivery point set, sorted ascending.
  std::vector<uint32_t> dps;
  /// Total reward collected by visiting every point of the set.
  double total_reward = 0.0;
  /// Pareto frontier, sorted by center_time ascending (slack ascending).
  std::vector<SequenceOption> options;

  /// The fastest sequence whose slack admits a start offset of `offset`,
  /// or nullptr if the set is infeasible for that offset.
  ///
  /// The frontier is sorted by center_time ascending AND slack ascending
  /// (see InsertParetoOptionT; the generators assert the invariant after
  /// every merge), so the admissible options form a suffix and the first
  /// one — found by binary search on slack — is the fastest.
  const SequenceOption* BestOptionFor(double offset) const {
    const auto it = std::lower_bound(
        options.begin(), options.end(), offset,
        [](const SequenceOption& o, double off) {
          return o.slack + kEps < off;
        });
    return it == options.end() ? nullptr : &*it;
  }
};

/// Deep self-check of one catalog entry (FTA_VALIDATE contract): `dps`
/// strictly ascending and in range, total_reward consistent with the
/// instance, the Pareto frontier sorted by (center_time asc, slack asc),
/// and every retained sequence a deadline-feasible permutation of `dps`
/// whose recorded center_time/slack match a fresh center-origin
/// evaluation.
Status ValidateCVdpsEntry(const Instance& instance, const CVdpsEntry& entry);

/// Tuning knobs for C-VDPS generation.
struct VdpsConfig {
  /// Distance-constrained pruning threshold ε (Section IV): when extending
  /// a sequence at dp_j, only delivery points within distance ε of dp_j are
  /// considered. kInfinity disables pruning (the paper's "-W" variants).
  double epsilon = kInfinity;
  /// Global cap on |VDPS|; the effective cap also respects each worker's
  /// maxDP when strategies are materialized. 0 means "no cap" (use with the
  /// exact engine on tiny instances only).
  uint32_t max_set_size = 4;
  /// Maximum Pareto options kept per C-VDPS.
  uint32_t max_pareto = 4;
  /// Soft cap on the number of generated C-VDPS entries (0 = unlimited).
  /// Generation stops expanding once reached; a warning is logged.
  size_t max_entries = 0;
  /// Force the exact bitmask dynamic program (Algorithm 1). Requires
  /// |dc.DP| <= 24. The default sequence enumerator produces identical
  /// catalogs for matched (epsilon, max_set_size) and scales much further.
  /// Takes precedence over beam_width.
  bool use_exact_dp = false;
  /// When > 0 (and use_exact_dp is off), generate with the approximate
  /// level-wise beam search instead of the exhaustive enumerator — the
  /// scalable choice for large max_set_size. See GenerateCVdpsBeam.
  size_t beam_width = 0;
  /// Threads for catalog construction: sharded sequence enumeration, beam
  /// level extension, ε-adjacency precompute, and per-worker strategy
  /// materialization. Catalogs are bit-identical at any thread count —
  /// shard results merge in a fixed root/chunk order that scheduling
  /// cannot disturb. <= 1 keeps everything on the calling thread. When
  /// max_entries > 0 the sequence enumerator runs single-sharded so the
  /// truncation point stays exactly the serial one.
  size_t num_threads = 1;
  /// Non-owning external pool for catalog construction. When set it
  /// overrides `num_threads` (an injected 1-thread pool keeps generation
  /// serial) and must outlive the Generate() call — long-lived callers
  /// reuse one pool instead of spawning workers per generation. Catalogs
  /// are bit-identical either way. Generate() does not retain the
  /// pointer: the config stored in the catalog has it scrubbed to null.
  ThreadPool* pool = nullptr;
};

/// One tick of instance churn, described against the catalog's OLD
/// indexing: the removed old indices, with every added worker / delivery
/// point appended at the TAIL of the new instance (so new-index order is
/// "old survivors first, in old relative order, then the additions in
/// new-instance order"). This is exactly the dense-compaction layout the
/// streaming dispatcher maintains, and it is what keeps the incremental
/// patch order-preserving: survivor ids stay monotone, so every sorted
/// structure in the catalog can be remapped without re-sorting.
struct CatalogDeltaPlan {
  /// Old worker indices removed, strictly ascending.
  std::vector<uint32_t> removed_workers;
  /// Old delivery point indices removed, strictly ascending.
  std::vector<uint32_t> removed_dps;
  /// Workers appended at the tail of the new instance.
  size_t added_workers = 0;
  /// Delivery points appended at the tail of the new instance.
  size_t added_dps = 0;

  bool empty() const {
    return removed_workers.empty() && removed_dps.empty() &&
           added_workers == 0 && added_dps == 0;
  }
};

/// Observability counters of catalog delta application — the incremental
/// counterpart of GenerationCounters, reported per ApplyDelta call and
/// summed over a stream run so benches can compare delta-apply cost against
/// full regeneration directly.
struct DeltaCounters {
  uint64_t deltas_applied = 0;
  uint64_t workers_removed = 0;
  uint64_t workers_added = 0;
  uint64_t dps_removed = 0;
  uint64_t dps_added = 0;
  uint64_t entries_removed = 0;
  uint64_t entries_added = 0;
  uint64_t strategies_removed = 0;
  uint64_t strategies_added = 0;
  /// Delivery points in the ε-ball neighborhood sub-instance enumerated
  /// for the added points (0 when a delta adds no delivery point) — the
  /// incremental work set, versus |DP| for a full regeneration.
  uint64_t neighborhood_dps = 0;
  /// DFS states expanded by the neighborhood sub-enumeration.
  uint64_t subenum_states = 0;

  double adjacency_ms = 0.0;
  double enumerate_ms = 0.0;
  double strategies_ms = 0.0;
  double index_ms = 0.0;
  /// End-to-end ApplyDelta wall time.
  double wall_ms = 0.0;

  /// Accumulates another delta's counters (stream aggregation).
  void Merge(const DeltaCounters& o);
};

/// One strategy of a worker in the FTA game: a VDPS (catalog entry) plus
/// the concrete sequence and payoff for that worker. The null strategy is
/// represented implicitly (see StrategySpace).
struct WorkerStrategy {
  /// Index into VdpsCatalog::entries().
  uint32_t entry_id = 0;
  /// The sequence the worker would follow (chosen from the entry's Pareto
  /// frontier as the fastest one admitting the worker's offset).
  Route route;
  /// Worker travel time from its location through the full route.
  double total_time = 0.0;
  double total_reward = 0.0;
  /// P(w, VDPS(w)) (Definition 7).
  double payoff = 0.0;
};

/// Reference to one worker strategy, as stored in the delivery-point →
/// strategies inverted index.
struct StrategyRef {
  uint32_t worker = 0;
  /// Index into VdpsCatalog::strategies(worker).
  int32_t strategy = 0;
};

/// The set of C-VDPSs of one instance plus per-worker strategy
/// materialization. Generated once and shared by every solver.
class VdpsCatalog {
 public:
  /// Runs C-VDPS generation (sequence enumerator by default, Algorithm 1's
  /// exact DP when config.use_exact_dp) and builds per-worker strategies.
  static VdpsCatalog Generate(const Instance& instance,
                              const VdpsConfig& config);

  /// Incrementally patches this catalog from the instance it was generated
  /// against to `new_instance`, described by `plan` (removals by old index,
  /// additions appended at the tail — see CatalogDeltaPlan). The result is
  /// bit-identical to `Generate(new_instance, config())`, entry for entry,
  /// strategy for strategy, index slot for index slot (pinned by
  /// tests/stream_identity_test.cc), at a fraction of the cost:
  ///
  ///   - removals are pure filters + monotone renumbering (no enumeration,
  ///     no route evaluation);
  ///   - added delivery points enumerate only their ε-ball neighborhood
  ///     (every C-VDPS containing an added point is a path in the
  ///     ε-adjacency graph, so its members lie within max_set_size - 1
  ///     hops), with the ε-adjacency CSR patched in place;
  ///   - added workers materialize only their own strategies; existing
  ///     workers evaluate only the new entries.
  ///
  /// Unsupported configurations return an error and leave the catalog
  /// untouched: beam-search catalogs (the beam's global top-k selection is
  /// not locally patchable) and truncated/max_entries catalogs (the
  /// truncation point is path-dependent). With ε = ∞ the "neighborhood" is
  /// every delivery point — correct, but with no enumeration savings.
  ///
  /// `counters`, when non-null, receives this call's DeltaCounters.
  Status ApplyDelta(const Instance& new_instance,
                    const CatalogDeltaPlan& plan,
                    DeltaCounters* counters = nullptr);

  const std::vector<CVdpsEntry>& entries() const { return entries_; }
  const CVdpsEntry& entry(size_t i) const { return entries_[i]; }
  size_t num_entries() const { return entries_.size(); }

  /// Strategies available to worker w (VDPS(w) of Section V-B, minus the
  /// null strategy which every worker implicitly has). Sorted by payoff
  /// descending.
  const std::vector<WorkerStrategy>& strategies(size_t worker_id) const {
    return strategies_[worker_id];
  }
  size_t num_workers() const { return strategies_.size(); }

  /// Contiguous copy of strategies(worker_id)[i].payoff (same order, same
  /// bits) — the SoA array the BestResponseEngine's candidate scan streams
  /// instead of striding through WorkerStrategy structs. Rebuilt whenever
  /// strategies change (Generate, ApplyDelta); ValidateInvariants pins the
  /// bitwise agreement.
  const std::vector<double>& strategy_payoffs(size_t worker_id) const {
    return strategy_payoffs_[worker_id];
  }

  /// max_w |VDPS(w)| — the |maxVDPS| factor in the paper's complexity
  /// bounds.
  size_t MaxStrategiesPerWorker() const;

  /// Every strategy (across all workers) whose VDPS contains delivery point
  /// `dp` — the delivery-point → strategies inverted index that lets the
  /// BestResponseEngine invalidate only the availability cache entries a
  /// strategy switch can actually affect.
  const std::vector<StrategyRef>& strategies_touching(uint32_t dp) const {
    return touching_[dp];
  }
  /// Number of delivery points the inverted index covers.
  size_t num_indexed_delivery_points() const { return touching_.size(); }

  /// True if generation hit the max_entries cap (results may be partial).
  bool truncated() const { return truncated_; }

  /// The configuration this catalog was generated with. ApplyDelta reuses
  /// it so the patched catalog answers for Generate(new_instance, config()).
  const VdpsConfig& config() const { return config_; }

  /// The ε-adjacency CSR the generation engine enumerated with, patched in
  /// place by ApplyDelta. Empty when ε = ∞ disabled pruning (check
  /// has_adjacency()).
  const RadiusAdjacency& adjacency() const { return adjacency_; }
  bool has_adjacency() const { return adjacency_.num_points() > 0; }

  /// Index of the entry whose delivery point set equals `dps` (sorted
  /// ascending), or -1. Binary search over the canonical (size asc, lex
  /// asc) entry order.
  int32_t FindEntry(std::span<const uint32_t> dps) const;

  /// Index into strategies(worker) of the strategy referencing `entry_id`,
  /// or -1. Linear scan of the worker's payoff-sorted list (a worker holds
  /// at most one strategy per entry).
  int32_t FindStrategy(size_t worker, uint32_t entry_id) const;

  /// Counters of the generation run that built this catalog.
  const GenerationCounters& generation() const { return gen_; }

  /// Deep self-check (FTA_VALIDATE contract, run once at the end of
  /// Generate): every entry passes ValidateCVdpsEntry, per-worker
  /// strategies are payoff-sorted, reference existing entries, respect
  /// maxDP, carry the route/total_time/payoff that BestOptionFor would
  /// materialize today, and the delivery-point → strategies inverted index
  /// matches an independent reconstruction element-for-element.
  Status ValidateInvariants(const Instance& instance) const;

  /// Summary line for logs: entry/strategy counts.
  std::string Summary() const;

 private:
  /// Recomputes strategy_payoffs_ from strategies_ (O(total strategies));
  /// called by Generate and ApplyDelta after strategies settle.
  void RebuildStrategyPayoffs();

  std::vector<CVdpsEntry> entries_;
  std::vector<std::vector<WorkerStrategy>> strategies_;
  /// strategy_payoffs_[w][i] == strategies_[w][i].payoff, bit for bit.
  std::vector<std::vector<double>> strategy_payoffs_;
  std::vector<std::vector<StrategyRef>> touching_;  // per delivery point
  GenerationCounters gen_;
  VdpsConfig config_;
  RadiusAdjacency adjacency_;
  bool truncated_ = false;
};

}  // namespace fta

#endif  // FTA_VDPS_CATALOG_H_
