#include "vdps/pareto.h"

namespace fta {

bool InsertParetoOption(std::vector<SequenceOption>& frontier,
                        SequenceOption opt, size_t max_size,
                        ParetoStats* stats) {
  return InsertParetoOptionT(frontier, std::move(opt), max_size, stats);
}

}  // namespace fta
