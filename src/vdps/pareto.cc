#include "vdps/pareto.h"

#include <algorithm>

#include "util/math_util.h"

namespace fta {

bool InsertParetoOption(std::vector<SequenceOption>& frontier,
                        SequenceOption opt, size_t max_size) {
  if (max_size == 0) return false;
  // Reject if dominated by an existing option.
  for (const SequenceOption& o : frontier) {
    if (o.center_time <= opt.center_time + kEps && o.slack + kEps >= opt.slack)
      return false;
  }
  // Remove options dominated by the new one.
  frontier.erase(std::remove_if(frontier.begin(), frontier.end(),
                                [&](const SequenceOption& o) {
                                  return opt.center_time <= o.center_time + kEps &&
                                         opt.slack + kEps >= o.slack;
                                }),
                 frontier.end());
  // Insert keeping center_time ascending order (slack is then ascending
  // automatically on a Pareto frontier).
  auto it = std::lower_bound(frontier.begin(), frontier.end(), opt,
                             [](const SequenceOption& a,
                                const SequenceOption& b) {
                               return a.center_time < b.center_time;
                             });
  frontier.insert(it, std::move(opt));
  if (frontier.size() > max_size) {
    // Keep the fastest option and the max-slack option; squeeze the middle.
    frontier.erase(frontier.begin() + 1);
  }
  return true;
}

}  // namespace fta
