#ifndef FTA_VDPS_CATALOG_INTERNAL_H_
#define FTA_VDPS_CATALOG_INTERNAL_H_

// Shared internals of full catalog generation (catalog.cc, the enumeration
// engines) and incremental delta application (delta.cc). ApplyDelta's
// bit-identity guarantee against Generate rests on both paths funneling
// through these exact comparators and this exact payoff evaluation — do
// not fork or "locally optimize" either side.

#include <algorithm>
#include <cstdint>

#include "vdps/catalog.h"

namespace fta {
namespace vdps_internal {

/// Denominator floor guarding against degenerate zero travel times (worker
/// standing at the center with a delivery point there too).
constexpr double kMinTravelTime = 1e-12;

/// Canonical catalog entry order: set size ascending, then lexicographic
/// on the sorted delivery point ids. A strict total order on distinct
/// sets, so any two sorts of the same entry multiset agree — which is what
/// lets ApplyDelta merge-patch a sorted entry list instead of re-sorting.
struct EntryOrder {
  bool operator()(const CVdpsEntry& a, const CVdpsEntry& b) const {
    if (a.dps.size() != b.dps.size()) return a.dps.size() < b.dps.size();
    return a.dps < b.dps;
  }
};

/// Canonical per-worker strategy order: payoff descending, entry id
/// ascending. The entry-id tiebreak makes this a strict total order (a
/// worker holds at most one strategy per entry), with the same
/// merge-instead-of-resort consequence as EntryOrder.
struct StrategyOrder {
  bool operator()(const WorkerStrategy& a, const WorkerStrategy& b) const {
    if (a.payoff != b.payoff) return a.payoff > b.payoff;
    return a.entry_id < b.entry_id;
  }
};

/// Materializes the strategy of a worker (center offset `offset`, maxDP
/// cap `max_dp`) for `entry` stored at catalog slot `entry_id`. Returns
/// false when the entry is not a valid strategy for the worker — too
/// large, or no retained sequence tolerates the offset.
inline bool MakeStrategy(const CVdpsEntry& entry, uint32_t entry_id,
                         double offset, uint32_t max_dp, WorkerStrategy* out) {
  if (entry.dps.size() > max_dp) return false;
  const SequenceOption* opt = entry.BestOptionFor(offset);
  if (opt == nullptr) return false;
  out->entry_id = entry_id;
  out->route = opt->route;
  out->total_time = offset + opt->center_time;
  out->total_reward = entry.total_reward;
  out->payoff = entry.total_reward / std::max(out->total_time, kMinTravelTime);
  return true;
}

}  // namespace vdps_internal
}  // namespace fta

#endif  // FTA_VDPS_CATALOG_INTERNAL_H_
