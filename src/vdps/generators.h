#ifndef FTA_VDPS_GENERATORS_H_
#define FTA_VDPS_GENERATORS_H_

#include <vector>

#include "geo/grid_index.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

class ThreadPool;

/// Result of a raw C-VDPS generation pass (before per-worker strategy
/// materialization).
struct GenerationResult {
  std::vector<CVdpsEntry> entries;
  /// True if the max_entries cap stopped the search early.
  bool truncated = false;
  /// The ε-adjacency CSR the engine enumerated with (empty when ε = ∞
  /// disables pruning). Handed to the catalog so ApplyDelta can patch it
  /// in place instead of re-running every radius query.
  RadiusAdjacency adjacency;
  /// Generation observability (states, Pareto traffic, arena footprint,
  /// shard balance, phase timings).
  GenerationCounters counters;
};

/// Exact C-VDPS generation following Algorithm 1: a dynamic program over
/// (subset, last delivery point) states with deadline checks, optionally
/// restricted by the ε-pruning predicate of Section IV and capped at
/// config.max_set_size. Requires |dc.DP| <= 24 (checked). Always serial —
/// this is the small-instance reference engine.
GenerationResult GenerateCVdpsExact(const Instance& instance,
                                    const VdpsConfig& config);

/// Scalable C-VDPS generation: depth-first enumeration of deadline-feasible
/// delivery point sequences from the center, extending only along the
/// precomputed ε-adjacency of the current point and at most max_set_size
/// deep. Sequences are merged per set into Pareto frontiers. Produces the
/// same catalog as GenerateCVdpsExact for matched parameters.
///
/// A non-null `pool` shards the enumeration over the level-1 frontier (one
/// shard per feasible first delivery point, each with a private route
/// arena and set store) and merges the shard stores in root order — the
/// catalog is bit-identical to the serial run at any thread count. When
/// config.max_entries > 0 the run stays single-sharded so the truncation
/// point matches the serial enumeration exactly.
GenerationResult GenerateCVdpsSequences(const Instance& instance,
                                        const VdpsConfig& config,
                                        ThreadPool* pool = nullptr);

/// Approximate C-VDPS generation for large max_set_size, where exhaustive
/// sequence enumeration explodes combinatorially: a level-wise beam search
/// that keeps only the `beam_width` most promising partial sequences per
/// length (scored by payoff rate, reward / travel time). Sound — every
/// produced entry is a genuine C-VDPS with a feasible sequence — but not
/// complete: low-scoring sets may be missed. With beam_width >= the number
/// of feasible partial sequences at every level it matches
/// GenerateCVdpsSequences.
///
/// A non-null `pool` parallelizes each level's extension scan in fixed
/// chunk order (recording and beam shrinking stay serial), so the result
/// is bit-identical at any thread count.
GenerationResult GenerateCVdpsBeam(const Instance& instance,
                                   const VdpsConfig& config,
                                   size_t beam_width,
                                   ThreadPool* pool = nullptr);

}  // namespace fta

#endif  // FTA_VDPS_GENERATORS_H_
