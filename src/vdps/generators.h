#ifndef FTA_VDPS_GENERATORS_H_
#define FTA_VDPS_GENERATORS_H_

#include <vector>

#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Result of a raw C-VDPS generation pass (before per-worker strategy
/// materialization).
struct GenerationResult {
  std::vector<CVdpsEntry> entries;
  /// True if the max_entries cap stopped the search early.
  bool truncated = false;
};

/// Exact C-VDPS generation following Algorithm 1: a dynamic program over
/// (subset, last delivery point) states with deadline checks, optionally
/// restricted by the ε-pruning predicate of Section IV and capped at
/// config.max_set_size. Requires |dc.DP| <= 24 (checked).
GenerationResult GenerateCVdpsExact(const Instance& instance,
                                    const VdpsConfig& config);

/// Scalable C-VDPS generation: depth-first enumeration of deadline-feasible
/// delivery point sequences from the center, extending only to ε-neighbors
/// of the current point (grid-index lookups) and at most max_set_size deep.
/// Sequences are merged per set into Pareto frontiers. Produces the same
/// catalog as GenerateCVdpsExact for matched parameters.
GenerationResult GenerateCVdpsSequences(const Instance& instance,
                                        const VdpsConfig& config);

/// Approximate C-VDPS generation for large max_set_size, where exhaustive
/// sequence enumeration explodes combinatorially: a level-wise beam search
/// that keeps only the `beam_width` most promising partial sequences per
/// length (scored by payoff rate, reward / travel time). Sound — every
/// produced entry is a genuine C-VDPS with a feasible sequence — but not
/// complete: low-scoring sets may be missed. With beam_width >= the number
/// of feasible partial sequences at every level it matches
/// GenerateCVdpsSequences.
GenerationResult GenerateCVdpsBeam(const Instance& instance,
                                   const VdpsConfig& config,
                                   size_t beam_width);

}  // namespace fta

#endif  // FTA_VDPS_GENERATORS_H_
