#include "stream/telemetry.h"

#include "obs/prometheus.h"
#include "stream/dispatcher.h"

namespace fta {

StreamTelemetry::StreamTelemetry(const StreamTelemetryConfig& config)
    : config_(config),
      tick_ms_(obs::MetricsRegistry::Global().GetSketch(
          "stream/tick_ms", config.relative_accuracy)),
      catalog_phase_ms_(obs::MetricsRegistry::Global().GetSketch(
          "stream/catalog_phase_ms", config.relative_accuracy)),
      solve_phase_ms_(obs::MetricsRegistry::Global().GetSketch(
          "stream/solve_phase_ms", config.relative_accuracy)),
      project_phase_ms_(obs::MetricsRegistry::Global().GetSketch(
          "stream/project_phase_ms", config.relative_accuracy)),
      live_workers_(
          obs::MetricsRegistry::Global().GetGauge("stream/live_workers")),
      backlog_dps_(
          obs::MetricsRegistry::Global().GetGauge("stream/backlog_dps")),
      tick_workers_in_(
          obs::MetricsRegistry::Global().GetGauge("stream/tick_workers_in")),
      tick_workers_out_(
          obs::MetricsRegistry::Global().GetGauge("stream/tick_workers_out")),
      tick_tasks_in_(
          obs::MetricsRegistry::Global().GetGauge("stream/tick_tasks_in")),
      tick_tasks_out_(
          obs::MetricsRegistry::Global().GetGauge("stream/tick_tasks_out")),
      last_tick_(obs::MetricsRegistry::Global().GetGauge("stream/last_tick")),
      tick_rounds_(
          obs::MetricsRegistry::Global().GetGauge("stream/tick_rounds")),
      ticks_warm_(
          obs::MetricsRegistry::Global().GetCounter("stream/ticks_warm")),
      ticks_cold_(
          obs::MetricsRegistry::Global().GetCounter("stream/ticks_cold")),
      ticks_converged_(
          obs::MetricsRegistry::Global().GetCounter("stream/ticks_converged")),
      tick_window_(config.window_ticks, config.relative_accuracy),
      catalog_window_(config.window_ticks, config.relative_accuracy),
      solve_window_(config.window_ticks, config.relative_accuracy),
      project_window_(config.window_ticks, config.relative_accuracy) {}

void StreamTelemetry::OnTick(const TickStats& ts) {
  if (!config_.enabled) return;
  tick_ms_.Observe(ts.tick_ms);
  catalog_phase_ms_.Observe(ts.catalog_ms);
  solve_phase_ms_.Observe(ts.solve_ms);
  project_phase_ms_.Observe(ts.project_ms);
  live_workers_.Set(static_cast<double>(ts.num_workers));
  backlog_dps_.Set(static_cast<double>(ts.num_dps));
  tick_workers_in_.Set(static_cast<double>(ts.workers_in));
  tick_workers_out_.Set(static_cast<double>(ts.workers_out));
  tick_tasks_in_.Set(static_cast<double>(ts.tasks_in));
  tick_tasks_out_.Set(static_cast<double>(ts.tasks_out));
  last_tick_.Set(static_cast<double>(ts.tick));
  tick_rounds_.Set(static_cast<double>(ts.rounds));
  (ts.used_delta ? ticks_warm_ : ticks_cold_).Increment();
  if (ts.converged) ticks_converged_.Increment();

  tick_window_.Observe(ts.tick_ms);
  catalog_window_.Observe(ts.catalog_ms);
  solve_window_.Observe(ts.solve_ms);
  project_window_.Observe(ts.project_ms);
  tick_window_.Advance();
  catalog_window_.Advance();
  solve_window_.Advance();
  project_window_.Advance();
}

std::string StreamTelemetry::PrometheusText() const {
  std::string out =
      obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
  for (const auto& [name, stats] : WindowReadings()) {
    obs::AppendWindowSummary(name, stats, out);
  }
  return out;
}

bool StreamTelemetry::MaybePublish(uint64_t tick) const {
  if (config_.publish_path.empty() || config_.publish_every_ticks == 0) {
    return true;
  }
  if ((tick + 1) % config_.publish_every_ticks != 0) return true;
  return PublishNow();
}

bool StreamTelemetry::PublishNow() const {
  if (config_.publish_path.empty()) return true;
  return obs::WriteTextFileAtomic(config_.publish_path, PrometheusText());
}

std::vector<std::pair<std::string, obs::WindowStats>>
StreamTelemetry::WindowReadings() const {
  std::vector<std::pair<std::string, obs::WindowStats>> out;
  out.reserve(4);
  out.emplace_back("tick_ms", tick_window_.Stats());
  out.emplace_back("catalog_phase_ms", catalog_window_.Stats());
  out.emplace_back("solve_phase_ms", solve_window_.Stats());
  out.emplace_back("project_phase_ms", project_window_.Stats());
  return out;
}

}  // namespace fta
