#ifndef FTA_STREAM_DIGEST_H_
#define FTA_STREAM_DIGEST_H_

#include <bit>
#include <cstdint>

namespace fta {

/// FNV-1a fold over 64-bit words; doubles fold by bit pattern, so two
/// digests agree only on bit-identical float content. The streaming
/// dispatcher folds every tick's assignment (and optionally the whole
/// catalog) into one run digest — the cold≡warm differential tests compare
/// nothing but this value.
class StreamDigest {
 public:
  void Fold(uint64_t word) {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
  }
  void Fold(double value) { Fold(std::bit_cast<uint64_t>(value)); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace fta

#endif  // FTA_STREAM_DIGEST_H_
