#include "stream/tick_engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "model/delivery_point.h"
#include "model/task.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fta {
namespace {

/// Dense-id map slot for an element removed this tick.
constexpr uint32_t kGoneSlot = 0xffffffffu;

}  // namespace

const char* ResolvePolicyName(ResolvePolicy policy) {
  switch (policy) {
    case ResolvePolicy::kColdRestart:
      return "cold-restart";
    case ResolvePolicy::kColdSeeded:
      return "cold-seeded";
    case ResolvePolicy::kWarm:
      return "warm";
  }
  return "unknown";
}

const char* StreamSolverName(StreamSolver solver) {
  switch (solver) {
    case StreamSolver::kFgt:
      return "fgt";
    case StreamSolver::kIegt:
      return "iegt";
  }
  return "unknown";
}

TickEngine::TickEngine(TickEngineConfig config) : config_(std::move(config)) {
  if (config_.policy == ResolvePolicy::kWarm) {
    FTA_CHECK_MSG(
        config_.vdps.beam_width == 0 && config_.vdps.max_entries == 0,
        "kWarm streaming requires a delta-patchable catalog config "
        "(beam_width == 0, max_entries == 0); see VdpsCatalog::ApplyDelta");
  }
}

void TickEngine::BuildInstance() {
  std::vector<DeliveryPoint> dps;
  dps.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const LiveTask& t = tasks_[i];
    SpatialTask task;
    task.delivery_point = static_cast<uint32_t>(i);
    task.expiry = t.service_window;  // relative to dispatch; see events.h
    task.reward = t.reward;
    dps.emplace_back(t.location, std::vector<SpatialTask>{task});
  }
  std::vector<Worker> workers;
  workers.reserve(workers_.size());
  for (const LiveWorker& w : workers_) workers.push_back(w.worker);
  instance_ = Instance(config_.center, std::move(dps), std::move(workers),
                       config_.travel);
}

uint64_t TickEngine::DigestCatalog() const {
  StreamDigest d;
  d.Fold(static_cast<uint64_t>(catalog_.num_entries()));
  for (const CVdpsEntry& entry : catalog_.entries()) {
    d.Fold(static_cast<uint64_t>(entry.dps.size()));
    for (uint32_t dp : entry.dps) d.Fold(static_cast<uint64_t>(dp));
    d.Fold(entry.total_reward);
    d.Fold(static_cast<uint64_t>(entry.options.size()));
    for (const SequenceOption& opt : entry.options) {
      for (uint32_t dp : opt.route) d.Fold(static_cast<uint64_t>(dp));
      d.Fold(opt.center_time);
      d.Fold(opt.slack);
    }
  }
  d.Fold(static_cast<uint64_t>(catalog_.num_workers()));
  for (size_t w = 0; w < catalog_.num_workers(); ++w) {
    const auto& sts = catalog_.strategies(w);
    d.Fold(static_cast<uint64_t>(sts.size()));
    for (const WorkerStrategy& st : sts) {
      d.Fold(static_cast<uint64_t>(st.entry_id));
      for (uint32_t dp : st.route) d.Fold(static_cast<uint64_t>(dp));
      d.Fold(st.total_time);
      d.Fold(st.total_reward);
      d.Fold(st.payoff);
    }
  }
  d.Fold(static_cast<uint64_t>(catalog_.num_indexed_delivery_points()));
  for (size_t dp = 0; dp < catalog_.num_indexed_delivery_points(); ++dp) {
    const auto& refs = catalog_.strategies_touching(static_cast<uint32_t>(dp));
    d.Fold(static_cast<uint64_t>(refs.size()));
    for (const StrategyRef& ref : refs) {
      d.Fold(static_cast<uint64_t>(ref.worker));
      d.Fold(static_cast<uint64_t>(static_cast<uint32_t>(ref.strategy)));
    }
  }
  const RadiusAdjacency& adj = catalog_.adjacency();
  d.Fold(static_cast<uint64_t>(adj.offsets.size()));
  for (uint32_t o : adj.offsets) d.Fold(static_cast<uint64_t>(o));
  for (uint32_t n : adj.neighbors) d.Fold(static_cast<uint64_t>(n));
  return d.value();
}

Status TickEngine::Tick(uint64_t tick, double now,
                        std::span<const StreamEvent> arrivals, TickStats* ts) {
  FTA_CHECK_MSG(ticks_run_ == 0 || tick > last_tick_index_,
                "tick indices must be strictly increasing");
  Stopwatch tick_sw;
  *ts = TickStats();
  ts->tick = tick;
  ts->time = now;

  // ---- 1. Ingest the arrivals (in feed order; stable ids follow). ----
  std::vector<LiveWorker> new_workers;
  std::vector<LiveTask> new_tasks;
  for (const StreamEvent& ev : arrivals) {
    if (ev.kind == StreamEventKind::kWorkerArrival) {
      new_workers.push_back(
          LiveWorker{ev.worker, ev.departure, next_worker_id_++});
      ++ts->workers_in;
    } else {
      new_tasks.push_back(LiveTask{ev.location, ev.reward, ev.queue_expiry,
                                   ev.service_window, next_task_id_++});
      ++ts->tasks_in;
    }
  }

  // ---- 2. Expire by the half-open live interval [arrival, expiry): an
  // element is dispatchable at `now` iff expiry > now, exactly — no
  // epsilon slop on the boundary (tests/stream_churn_test pins a task
  // expiring precisely on a tick boundary as gone). Survivors compact in
  // order; surviving additions append at the tail — the exact layout
  // CatalogDeltaPlan describes. ----
  CatalogDeltaPlan plan;
  std::vector<uint32_t> worker_map(workers_.size(), kGoneSlot);
  std::vector<uint32_t> dp_map(tasks_.size(), kGoneSlot);
  {
    size_t out = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].departure <= now) {
        plan.removed_workers.push_back(static_cast<uint32_t>(i));
        ++ts->workers_out;
        continue;
      }
      worker_map[i] = static_cast<uint32_t>(out);
      if (out != i) workers_[out] = std::move(workers_[i]);
      ++out;
    }
    workers_.resize(out);
  }
  {
    size_t out = 0;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].queue_expiry <= now) {
        plan.removed_dps.push_back(static_cast<uint32_t>(i));
        ++ts->tasks_out;
        continue;
      }
      dp_map[i] = static_cast<uint32_t>(out);
      if (out != i) tasks_[out] = std::move(tasks_[i]);
      ++out;
    }
    tasks_.resize(out);
  }
  // Dead-on-arrival elements (deadline at or before their first tick)
  // never enter the instance; they count as arrived and expired.
  for (LiveWorker& w : new_workers) {
    if (w.departure <= now) {
      ++ts->workers_out;
      continue;
    }
    workers_.push_back(std::move(w));
    ++plan.added_workers;
  }
  for (LiveTask& t : new_tasks) {
    if (t.queue_expiry <= now) {
      ++ts->tasks_out;
      continue;
    }
    tasks_.push_back(std::move(t));
    ++plan.added_dps;
  }

  BuildInstance();
  FTA_DCHECK_OK(instance_.Validate());
  ts->num_workers = instance_.num_workers();
  ts->num_dps = instance_.num_delivery_points();

  // ---- 3. Catalog maintenance: incremental delta on the warm path,
  // full regeneration otherwise (and for everyone on the first tick). ----
  Stopwatch catalog_sw;
  if (ticks_run_ == 0 || config_.policy != ResolvePolicy::kWarm) {
    catalog_ = VdpsCatalog::Generate(instance_, config_.vdps);
  } else {
    DeltaCounters dc;
    if (Status s = catalog_.ApplyDelta(instance_, plan, &dc); !s.ok()) {
      return s;
    }
    ts->delta = dc;
    ts->used_delta = true;
  }
  ts->catalog_ms = catalog_sw.ElapsedMillis();

  // ---- 4. Warm-seed projection: the previous equilibrium's surviving
  // assignments, re-addressed through this tick's id maps. A worker whose
  // set lost any delivery point falls back to the null strategy; surviving
  // sets stay pairwise disjoint (subsets of a disjoint family), so the
  // seed is always Definition-8 valid. ----
  Stopwatch project_sw;
  std::vector<int32_t> seed;
  const bool seeded =
      config_.policy != ResolvePolicy::kColdRestart && ticks_run_ > 0;
  if (seeded) {
    seed.assign(instance_.num_workers(), kNullStrategy);
    std::vector<uint32_t> mapped;
    for (size_t ow = 0; ow < prev_sets_.size(); ++ow) {
      if (worker_map[ow] == kGoneSlot) continue;
      const std::vector<uint32_t>& set = prev_sets_[ow];
      if (set.empty()) continue;
      mapped.clear();
      bool alive = true;
      for (uint32_t dp : set) {
        if (dp_map[dp] == kGoneSlot) {
          alive = false;
          break;
        }
        mapped.push_back(dp_map[dp]);  // monotone map: stays sorted
      }
      if (!alive) continue;
      const int32_t entry = catalog_.FindEntry(mapped);
      FTA_DCHECK_MSG(entry >= 0,
                     "surviving delivery point set lost its catalog entry");
      if (entry < 0) continue;
      const int32_t strategy =
          catalog_.FindStrategy(worker_map[ow], static_cast<uint32_t>(entry));
      FTA_DCHECK_MSG(strategy >= 0,
                     "surviving worker lost its strategy for a surviving "
                     "entry");
      if (strategy < 0) continue;
      seed[worker_map[ow]] = strategy;
    }
  }
  ts->project_ms = project_sw.ElapsedMillis();

  // ---- 5. Solve this tick's game, warm-started when seeded. ----
  Stopwatch solve_sw;
  const uint64_t tick_seed =
      SplitMix64(config_.seed ^ static_cast<uint64_t>(tick + 1)).Next();
  GameResult game;
  if (config_.solver == StreamSolver::kFgt) {
    FgtConfig fgt = config_.fgt;
    fgt.seed = tick_seed;
    if (seeded) fgt.warm_start = &seed;
    game = SolveFgt(instance_, catalog_, fgt);
  } else {
    IegtConfig iegt = config_.iegt;
    iegt.seed = tick_seed;
    if (seeded) iegt.warm_start = &seed;
    game = SolveIegt(instance_, catalog_, iegt);
  }
  ts->solve_ms = solve_sw.ElapsedMillis();
  ts->rounds = game.rounds;
  ts->converged = game.converged;

  last_assignment_ = std::move(game.assignment);
  // Tick-boundary contract: the standing plan is Definition-8 valid.
  FTA_DCHECK_OK(last_assignment_.Validate(instance_));

  prev_sets_.assign(instance_.num_workers(), {});
  for (size_t w = 0; w < instance_.num_workers(); ++w) {
    prev_sets_[w] = last_assignment_.route(w);
    std::sort(prev_sets_[w].begin(), prev_sets_[w].end());
  }

  // ---- 6. Fold the tick into the run digest and record stats. ----
  ts->assigned_workers = last_assignment_.num_assigned_workers();
  ts->covered_dps = last_assignment_.num_covered_delivery_points();
  const std::vector<double> payoffs = last_assignment_.Payoffs(instance_);
  ts->average_payoff = Mean(payoffs);
  ts->payoff_difference = last_assignment_.PayoffDifference(instance_);

  digest_.Fold(static_cast<uint64_t>(tick));
  digest_.Fold(static_cast<uint64_t>(instance_.num_workers()));
  digest_.Fold(static_cast<uint64_t>(instance_.num_delivery_points()));
  for (size_t w = 0; w < instance_.num_workers(); ++w) {
    digest_.Fold(workers_[w].stable_id);
    const Route& route = last_assignment_.route(w);
    digest_.Fold(static_cast<uint64_t>(route.size()));
    for (uint32_t dp : route) digest_.Fold(tasks_[dp].stable_id);
    digest_.Fold(payoffs[w]);
  }
  if (config_.digest_catalog) {
    ts->catalog_digest = DigestCatalog();
    digest_.Fold(ts->catalog_digest);
  }

  last_tick_index_ = tick;
  ++ticks_run_;
  ts->tick_ms = tick_sw.ElapsedMillis();
  return Status::Ok();
}

}  // namespace fta
