#include "stream/dispatcher.h"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace fta {
namespace {

/// Mirrors a finished stream run into the process-wide metrics registry.
void PublishStream(const StreamCounters& c) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& runs = reg.GetCounter("stream/runs");
  static obs::Counter& ticks = reg.GetCounter("stream/ticks");
  static obs::Counter& events = reg.GetCounter("stream/events_ingested");
  static obs::Counter& regens = reg.GetCounter("stream/regens");
  static obs::Counter& deltas = reg.GetCounter("stream/deltas");
  static obs::Counter& rounds = reg.GetCounter("stream/solver_rounds");
  static obs::Counter& tasks_arrived = reg.GetCounter("stream/tasks_arrived");
  static obs::Counter& tasks_expired = reg.GetCounter("stream/tasks_expired");
  static obs::Counter& workers_arrived =
      reg.GetCounter("stream/workers_arrived");
  static obs::Counter& workers_departed =
      reg.GetCounter("stream/workers_departed");
  static obs::Histogram& catalog_ms = reg.GetHistogram(
      "stream/catalog_ms_per_tick", obs::ExponentialBounds(0.25, 4.0, 8));
  static obs::Histogram& solve_ms = reg.GetHistogram(
      "stream/solve_ms_per_tick", obs::ExponentialBounds(0.25, 4.0, 8));
  runs.Increment();
  ticks.Add(c.ticks);
  events.Add(c.events_ingested);
  regens.Add(c.regens);
  deltas.Add(c.deltas);
  rounds.Add(c.solver_rounds);
  tasks_arrived.Add(c.tasks_arrived);
  tasks_expired.Add(c.tasks_expired);
  workers_arrived.Add(c.workers_arrived);
  workers_departed.Add(c.workers_departed);
  if (c.ticks > 0) {
    catalog_ms.Observe(c.catalog_ms / static_cast<double>(c.ticks));
    solve_ms.Observe(c.solve_ms / static_cast<double>(c.ticks));
  }
}

TickEngineConfig ToEngineConfig(const StreamConfig& c) {
  TickEngineConfig e;
  e.center = c.center;
  e.travel = c.travel;
  e.policy = c.policy;
  e.solver = c.solver;
  e.vdps = c.vdps;
  e.fgt = c.fgt;
  e.iegt = c.iegt;
  e.seed = c.seed;
  e.digest_catalog = c.digest_catalog;
  return e;
}

}  // namespace

void StreamCounters::FoldTick(const TickStats& ts, size_t events) {
  ++ticks;
  events_ingested += events;
  workers_arrived += ts.workers_in;
  workers_departed += ts.workers_out;
  tasks_arrived += ts.tasks_in;
  tasks_expired += ts.tasks_out;
  if (ts.used_delta) {
    ++deltas;
    delta.Merge(ts.delta);
  } else {
    ++regens;
  }
  solver_rounds += static_cast<uint64_t>(ts.rounds);
  if (ts.converged) ++converged_ticks;
  catalog_ms += ts.catalog_ms;
  solve_ms += ts.solve_ms;
}

StreamDispatcher::StreamDispatcher(StreamConfig config,
                                   std::vector<StreamEvent> events)
    : config_(std::move(config)),
      events_(std::move(events)),
      engine_(ToEngineConfig(config_)) {
  for (size_t i = 1; i < events_.size(); ++i) {
    FTA_CHECK_MSG(events_[i - 1].time <= events_[i].time,
                  "stream events must be sorted by non-decreasing time");
  }
  if (config_.telemetry.enabled) {
    telemetry_.reset(new StreamTelemetry(config_.telemetry));
  }
}

Status StreamDispatcher::Step() {
  FTA_SPAN("stream/tick");
  FTA_CHECK_MSG(!Done(), "Step() past max_ticks");
  const double now = static_cast<double>(tick_) * config_.tick_period;

  // Drain every arrival due by `now` (sorted feed, so one pass); the
  // engine ingests the slice and runs the tick.
  const size_t first = next_event_;
  while (next_event_ < events_.size() && events_[next_event_].time <= now) {
    ++next_event_;
  }
  const std::span<const StreamEvent> arrivals(events_.data() + first,
                                              next_event_ - first);

  TickStats ts;
  if (Status s = engine_.Tick(tick_, now, arrivals, &ts); !s.ok()) return s;
  counters_.FoldTick(ts, arrivals.size());

  // Telemetry observes the finished tick (after the digest fold inside
  // the engine, so it cannot perturb observable behavior).
  if (telemetry_ != nullptr) {
    telemetry_->OnTick(ts);
    telemetry_->MaybePublish(tick_);
  }
  last_tick_ = ts;
  if (config_.record_ticks) ticks_.push_back(std::move(ts));
  ++tick_;
  return Status::Ok();
}

StatusOr<StreamResult> StreamDispatcher::Run() {
  FTA_SPAN("stream/run");
  while (!Done()) {
    if (Status s = Step(); !s.ok()) return s;
  }
  StreamResult result;
  result.counters = counters_;
  result.ticks = ticks_;
  result.digest = engine_.digest();
  PublishStream(counters_);
  if (telemetry_ != nullptr) telemetry_->PublishNow();
  FTA_LOG(kInfo) << "stream run: policy=" << ResolvePolicyName(config_.policy)
                 << " solver=" << StreamSolverName(config_.solver)
                 << " ticks=" << counters_.ticks
                 << " rounds=" << counters_.solver_rounds << " catalog_ms="
                 << StrFormat("%.2f", counters_.catalog_ms) << " solve_ms="
                 << StrFormat("%.2f", counters_.solve_ms);
  return result;
}

}  // namespace fta
