#ifndef FTA_STREAM_TICK_ENGINE_H_
#define FTA_STREAM_TICK_ENGINE_H_

// The per-tick core of streaming dispatch, factored out of
// StreamDispatcher so the offline replay loop (stream/dispatcher.h) and
// the serving layer (serve/server.h) drive the exact same machinery:
// arrival ingest with stable-id assignment, deadline expiry with dense
// compaction, incremental catalog maintenance (CatalogDeltaPlan /
// VdpsCatalog::ApplyDelta on the warm path), warm-seed projection through
// the tick's id maps, the FGT/IEGT solve, and the FNV-1a digest fold.
//
// One TickEngine is one center's timeline. Tick indices are supplied by
// the caller (strictly increasing, not necessarily contiguous — a serving
// shard only ticks when a request arrives); the per-tick solver seed,
// the digest fold, and the expiry semantics depend only on the supplied
// (tick, now) pair and the arrival contents, never on wall time or
// scheduling. Digests are bit-identical to the pre-extraction
// StreamDispatcher (pinned by tests/stream_identity_test.cc).

#include <cstdint>
#include <span>
#include <vector>

#include "game/fgt.h"
#include "game/iegt.h"
#include "geo/point.h"
#include "geo/travel.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "stream/digest.h"
#include "stream/events.h"
#include "util/status.h"
#include "vdps/catalog.h"

namespace fta {

/// How the engine re-solves each tick after churn.
enum class ResolvePolicy : uint8_t {
  /// Regenerate the catalog and solve from the random singleton
  /// initialization — the from-scratch baseline the bench gates against.
  kColdRestart = 0,
  /// Regenerate the catalog but seed the solver from the projected
  /// previous equilibrium — the differential reference: it shares kWarm's
  /// seed and solver trajectory while exercising none of the incremental
  /// machinery, so kWarm ≡ kColdSeeded digests pin delta ≡ regen AND
  /// warm ≡ cold convergence bit-identically.
  kColdSeeded = 1,
  /// Patch the catalog with VdpsCatalog::ApplyDelta and seed the solver
  /// from the projected previous equilibrium — the streaming fast path.
  kWarm = 2,
};

const char* ResolvePolicyName(ResolvePolicy policy);

/// Which game solver equilibrates each tick.
enum class StreamSolver : uint8_t {
  kFgt = 0,
  kIegt = 1,
};

const char* StreamSolverName(StreamSolver solver);

struct TickEngineConfig {
  /// Distribution center shared by every tick's instance.
  Point center;
  TravelModel travel;
  ResolvePolicy policy = ResolvePolicy::kWarm;
  StreamSolver solver = StreamSolver::kFgt;
  /// Catalog configuration. kWarm requires a delta-patchable setup:
  /// beam_width == 0 and max_entries == 0 (checked at construction).
  VdpsConfig vdps;
  /// Base solver configurations; the per-tick seed overrides their `seed`
  /// (derived as SplitMix64(seed ^ (tick + 1)) so every tick and every
  /// stream seed gets an independent solver randomization).
  FgtConfig fgt;
  IegtConfig iegt;
  uint64_t seed = 42;
  /// Fold a digest of the ENTIRE catalog (entries, strategies, inverted
  /// index, ε-adjacency) into the run digest every tick. O(catalog) per
  /// tick — the identity tests' instrument, off by default.
  bool digest_catalog = false;
};

/// Per-tick observability record.
struct TickStats {
  uint64_t tick = 0;
  double time = 0.0;
  size_t num_workers = 0;
  size_t num_dps = 0;
  size_t workers_in = 0;
  size_t workers_out = 0;
  size_t tasks_in = 0;
  size_t tasks_out = 0;
  /// True when the catalog was delta-patched (kWarm past the first tick).
  bool used_delta = false;
  double catalog_ms = 0.0;
  double solve_ms = 0.0;
  /// Warm-seed projection (phase 4) wall time.
  double project_ms = 0.0;
  /// Whole-tick wall time (ingest through digest fold).
  double tick_ms = 0.0;
  int rounds = 0;
  bool converged = false;
  size_t assigned_workers = 0;
  size_t covered_dps = 0;
  double average_payoff = 0.0;
  double payoff_difference = 0.0;
  /// Catalog digest of this tick (0 unless config.digest_catalog).
  uint64_t catalog_digest = 0;
  /// Delta counters of this tick (zero when the catalog was regenerated).
  DeltaCounters delta;
};

/// One center's re-planning timeline. Tick() advances one tick; callers
/// (the stream dispatcher, a serving shard, the sequential reference loop)
/// own the clock and the arrival feed. Not thread-safe: a caller that
/// shares an engine across threads must serialize Tick() externally (the
/// serving shard holds its solve mutex across the call).
class TickEngine {
 public:
  /// kWarm policy requires a delta-patchable VdpsConfig (checked).
  explicit TickEngine(TickEngineConfig config);

  /// Advances one tick at absolute time `now` with index `tick` (strictly
  /// increasing across calls, checked): ingests `arrivals` (every event
  /// due at `now`, in feed order), expires dead elements, patches or
  /// regenerates the catalog, seeds and runs the solver, and folds the
  /// tick into the run digest. Fills `*ts`.
  Status Tick(uint64_t tick, double now, std::span<const StreamEvent> arrivals,
              TickStats* ts);

  /// State after the last Tick(), for tests, tooling, and responses.
  const Instance& instance() const { return instance_; }
  const VdpsCatalog& catalog() const { return catalog_; }
  const Assignment& last_assignment() const { return last_assignment_; }
  /// FNV-1a running digest: every tick folds its index, instance shape,
  /// and full assignment (stable ids, routes, payoff bits), plus the
  /// catalog digest when enabled. Two timelines agree iff their observable
  /// behavior is bit-identical.
  uint64_t digest() const { return digest_.value(); }
  uint64_t ticks_run() const { return ticks_run_; }
  const TickEngineConfig& config() const { return config_; }

 private:
  struct LiveWorker {
    Worker worker;
    double departure = 0.0;
    uint64_t stable_id = 0;
  };
  struct LiveTask {
    Point location;
    double reward = 0.0;
    double queue_expiry = 0.0;
    double service_window = 0.0;
    uint64_t stable_id = 0;
  };

  void BuildInstance();
  uint64_t DigestCatalog() const;

  TickEngineConfig config_;

  std::vector<LiveWorker> workers_;
  std::vector<LiveTask> tasks_;
  uint64_t next_worker_id_ = 0;
  uint64_t next_task_id_ = 0;

  Instance instance_;
  VdpsCatalog catalog_;
  Assignment last_assignment_;
  /// Sorted delivery point sets (dense ids) held by each worker after the
  /// last solve — the projection source for the next tick's warm seed.
  std::vector<std::vector<uint32_t>> prev_sets_;

  StreamDigest digest_;
  uint64_t ticks_run_ = 0;
  uint64_t last_tick_index_ = 0;
};

}  // namespace fta

#endif  // FTA_STREAM_TICK_ENGINE_H_
