#ifndef FTA_STREAM_TELEMETRY_H_
#define FTA_STREAM_TELEMETRY_H_

// Per-tick instrumentation of the streaming dispatch loop: tick-latency
// quantile sketches split by phase, churn/backlog gauges, warm-vs-cold
// path counters, and rolling windows over the last N ticks — the live
// serving view ROADMAP item 2's p50/p99 gates read.
//
// Strictly an OBSERVER of TickStats values the dispatcher already
// computes: it never touches the instance, catalog, solver, or digest, so
// telemetry on/off cannot change assignments (pinned by the stream
// identity battery). Epoch advancement is tick-driven — no wall clock
// anywhere in this layer (enforced by fta_lint's wall-clock-read rule);
// the only nondeterministic inputs are the phase timings themselves.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

namespace fta {

struct TickStats;

struct StreamTelemetryConfig {
  /// Master switch; off skips every per-tick observation.
  bool enabled = true;
  /// Rolling-window length in ticks (epoch == tick).
  size_t window_ticks = 32;
  /// Relative accuracy of the latency sketches (registry + windows).
  double relative_accuracy = 0.01;
  /// When non-empty, the Prometheus text page is published here (atomic
  /// tmp+rename) every `publish_every_ticks` ticks and at run end — the
  /// node_exporter-textfile pattern `fta_tool metrics-serve` serves.
  std::string publish_path;
  /// 0 publishes only at run end (when publish_path is set).
  size_t publish_every_ticks = 0;
};

/// The dispatcher's telemetry sink. Registers its metrics in the global
/// registry at construction (names are distinct from the run-end
/// PublishStream aggregates, so the two never double-count) and caches the
/// references, keeping OnTick allocation-free and lock-free on the
/// registry side.
class StreamTelemetry {
 public:
  explicit StreamTelemetry(const StreamTelemetryConfig& config);

  /// Records one completed tick: phase sketches, churn/backlog gauges,
  /// warm-vs-cold counters, then advances every rolling window so the
  /// epoch boundary is exactly the tick boundary.
  void OnTick(const TickStats& ts);

  /// The full Prometheus page: global registry snapshot plus this
  /// dispatcher's rolling windows.
  std::string PrometheusText() const;

  /// Publishes PrometheusText() to config.publish_path when the cadence
  /// says so (tick numbers are 0-based; cadence 1 publishes every tick).
  /// No-op without a path. Returns false only on I/O failure.
  bool MaybePublish(uint64_t tick) const;
  /// Unconditional publish (run end). No-op without a path.
  bool PublishNow() const;

  /// Windowed readings, name-paired for the run report's "windows"
  /// section.
  std::vector<std::pair<std::string, obs::WindowStats>> WindowReadings()
      const;

  const obs::RollingWindow& tick_window() const { return tick_window_; }
  const StreamTelemetryConfig& config() const { return config_; }

 private:
  StreamTelemetryConfig config_;

  // Registry-resident (process-lifetime) metrics, cached.
  obs::QuantileSketch& tick_ms_;
  obs::QuantileSketch& catalog_phase_ms_;
  obs::QuantileSketch& solve_phase_ms_;
  obs::QuantileSketch& project_phase_ms_;
  obs::Gauge& live_workers_;
  obs::Gauge& backlog_dps_;
  obs::Gauge& tick_workers_in_;
  obs::Gauge& tick_workers_out_;
  obs::Gauge& tick_tasks_in_;
  obs::Gauge& tick_tasks_out_;
  obs::Gauge& last_tick_;
  obs::Gauge& tick_rounds_;
  obs::Counter& ticks_warm_;
  obs::Counter& ticks_cold_;
  obs::Counter& ticks_converged_;

  // Per-dispatcher rolling windows (epoch == tick).
  obs::RollingWindow tick_window_;
  obs::RollingWindow catalog_window_;
  obs::RollingWindow solve_window_;
  obs::RollingWindow project_window_;
};

}  // namespace fta

#endif  // FTA_STREAM_TELEMETRY_H_
