#ifndef FTA_STREAM_DISPATCHER_H_
#define FTA_STREAM_DISPATCHER_H_

// Event-driven streaming dispatch loop over the existing catalog + game
// engines: a time-sliced tick queue of worker/task arrivals and
// expirations, incremental C-VDPS catalog deltas between ticks, and
// warm-started FGT/IEGT solves seeded from the previous equilibrium.
//
// Each tick maintains a standing equilibrium PLAN over the current queue
// (continuous re-planning; commitment/serving is downstream of this
// subsystem). Elements leave only by their own deadlines, so most of the
// previous equilibrium survives a tick — that persistence is what the
// warm start and the catalog delta both exploit.

#include <cstdint>
#include <memory>
#include <vector>

#include "game/fgt.h"
#include "game/iegt.h"
#include "geo/point.h"
#include "geo/travel.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "stream/digest.h"
#include "stream/events.h"
#include "stream/telemetry.h"
#include "util/status.h"
#include "vdps/catalog.h"

namespace fta {

/// How the dispatcher re-solves each tick after churn.
enum class ResolvePolicy : uint8_t {
  /// Regenerate the catalog and solve from the random singleton
  /// initialization — the from-scratch baseline the bench gates against.
  kColdRestart = 0,
  /// Regenerate the catalog but seed the solver from the projected
  /// previous equilibrium — the differential reference: it shares kWarm's
  /// seed and solver trajectory while exercising none of the incremental
  /// machinery, so kWarm ≡ kColdSeeded digests pin delta ≡ regen AND
  /// warm ≡ cold convergence bit-identically.
  kColdSeeded = 1,
  /// Patch the catalog with VdpsCatalog::ApplyDelta and seed the solver
  /// from the projected previous equilibrium — the streaming fast path.
  kWarm = 2,
};

const char* ResolvePolicyName(ResolvePolicy policy);

/// Which game solver equilibrates each tick.
enum class StreamSolver : uint8_t {
  kFgt = 0,
  kIegt = 1,
};

const char* StreamSolverName(StreamSolver solver);

struct StreamConfig {
  /// Distribution center shared by every tick's instance.
  Point center;
  TravelModel travel;
  /// Tick t runs at absolute time t * tick_period.
  double tick_period = 1.0;
  /// Number of ticks to run (tick 0 included).
  size_t max_ticks = 16;
  ResolvePolicy policy = ResolvePolicy::kWarm;
  StreamSolver solver = StreamSolver::kFgt;
  /// Catalog configuration. kWarm requires a delta-patchable setup:
  /// beam_width == 0 and max_entries == 0 (checked at construction).
  VdpsConfig vdps;
  /// Base solver configurations; the per-tick seed overrides their `seed`
  /// (derived as SplitMix64(seed ^ (tick + 1)) so every tick and every
  /// stream seed gets an independent solver randomization).
  FgtConfig fgt;
  IegtConfig iegt;
  uint64_t seed = 42;
  /// Keep per-tick stats in the result (cheap; off for huge runs).
  bool record_ticks = true;
  /// Fold a digest of the ENTIRE catalog (entries, strategies, inverted
  /// index, ε-adjacency) into the run digest every tick. O(catalog) per
  /// tick — the identity tests' instrument, off by default.
  bool digest_catalog = false;
  /// Live-telemetry sink: per-tick phase sketches, rolling windows, and
  /// the Prometheus publisher. Purely observational — telemetry on/off
  /// leaves the run digest unchanged (pinned by the identity battery).
  StreamTelemetryConfig telemetry;
};

/// Per-tick observability record.
struct TickStats {
  uint64_t tick = 0;
  double time = 0.0;
  size_t num_workers = 0;
  size_t num_dps = 0;
  size_t workers_in = 0;
  size_t workers_out = 0;
  size_t tasks_in = 0;
  size_t tasks_out = 0;
  /// True when the catalog was delta-patched (kWarm past tick 0).
  bool used_delta = false;
  double catalog_ms = 0.0;
  double solve_ms = 0.0;
  /// Warm-seed projection (phase 4) wall time.
  double project_ms = 0.0;
  /// Whole-tick wall time (ingest through digest fold).
  double tick_ms = 0.0;
  int rounds = 0;
  bool converged = false;
  size_t assigned_workers = 0;
  size_t covered_dps = 0;
  double average_payoff = 0.0;
  double payoff_difference = 0.0;
  /// Catalog digest of this tick (0 unless config.digest_catalog).
  uint64_t catalog_digest = 0;
  /// Delta counters of this tick (zero when the catalog was regenerated).
  DeltaCounters delta;
};

/// Whole-run aggregation, mirrored into the obs metrics registry.
struct StreamCounters {
  uint64_t ticks = 0;
  uint64_t events_ingested = 0;
  uint64_t workers_arrived = 0;
  uint64_t workers_departed = 0;
  uint64_t tasks_arrived = 0;
  uint64_t tasks_expired = 0;
  /// Full catalog regenerations vs incremental delta applications.
  uint64_t regens = 0;
  uint64_t deltas = 0;
  uint64_t solver_rounds = 0;
  uint64_t converged_ticks = 0;
  /// Catalog maintenance wall time (Generate or ApplyDelta), and solver
  /// wall time, summed over ticks — the bench compares these across
  /// policies at matched churn.
  double catalog_ms = 0.0;
  double solve_ms = 0.0;
  /// Aggregated delta counters (kWarm only).
  DeltaCounters delta;
};

struct StreamResult {
  StreamCounters counters;
  std::vector<TickStats> ticks;
  /// FNV-1a whole-run digest: every tick folds its instance shape and
  /// full assignment (stable ids, routes, payoff bits), plus the catalog
  /// digest when enabled. Two runs agree iff their observable behavior is
  /// bit-identical.
  uint64_t digest = 0;
};

/// The streaming dispatch loop. Step() advances one tick; Run() drives the
/// configured number of ticks and returns the aggregated result. Tests
/// step manually and inspect instance()/catalog()/last_assignment()
/// between ticks.
class StreamDispatcher {
 public:
  /// `events` must be sorted by non-decreasing time (checked). kWarm
  /// policy requires a delta-patchable VdpsConfig (checked).
  StreamDispatcher(StreamConfig config, std::vector<StreamEvent> events);

  bool Done() const { return tick_ >= config_.max_ticks; }

  /// Advances one tick: ingests due arrivals, expires dead elements,
  /// patches or regenerates the catalog, seeds and runs the solver, and
  /// folds the tick into the run digest.
  Status Step();

  /// Runs all remaining ticks and finalizes the result.
  StatusOr<StreamResult> Run();

  /// State after the last Step(), for tests and tooling.
  const Instance& instance() const { return instance_; }
  const VdpsCatalog& catalog() const { return catalog_; }
  const Assignment& last_assignment() const { return last_assignment_; }
  const TickStats& last_tick() const { return last_tick_; }
  const StreamCounters& counters() const { return counters_; }
  uint64_t digest() const { return digest_.value(); }
  /// Null when config.telemetry.enabled is false.
  const StreamTelemetry* telemetry() const { return telemetry_.get(); }

 private:
  struct LiveWorker {
    Worker worker;
    double departure = 0.0;
    uint64_t stable_id = 0;
  };
  struct LiveTask {
    Point location;
    double reward = 0.0;
    double queue_expiry = 0.0;
    double service_window = 0.0;
    uint64_t stable_id = 0;
  };

  void BuildInstance();
  uint64_t DigestCatalog() const;

  StreamConfig config_;
  std::vector<StreamEvent> events_;
  size_t next_event_ = 0;
  size_t tick_ = 0;

  std::vector<LiveWorker> workers_;
  std::vector<LiveTask> tasks_;
  uint64_t next_worker_id_ = 0;
  uint64_t next_task_id_ = 0;

  Instance instance_;
  VdpsCatalog catalog_;
  Assignment last_assignment_;
  /// Sorted delivery point sets (dense ids) held by each worker after the
  /// last solve — the projection source for the next tick's warm seed.
  std::vector<std::vector<uint32_t>> prev_sets_;

  StreamCounters counters_;
  std::vector<TickStats> ticks_;
  TickStats last_tick_;
  StreamDigest digest_;
  std::unique_ptr<StreamTelemetry> telemetry_;
};

}  // namespace fta

#endif  // FTA_STREAM_DISPATCHER_H_
