#ifndef FTA_STREAM_DISPATCHER_H_
#define FTA_STREAM_DISPATCHER_H_

// Event-driven streaming dispatch loop over the per-tick core in
// stream/tick_engine.h: a time-sliced tick queue of worker/task arrivals
// and expirations, incremental C-VDPS catalog deltas between ticks, and
// warm-started FGT/IEGT solves seeded from the previous equilibrium.
//
// Each tick maintains a standing equilibrium PLAN over the current queue
// (continuous re-planning; commitment/serving is downstream of this
// subsystem). Elements leave only by their own deadlines, so most of the
// previous equilibrium survives a tick — that persistence is what the
// warm start and the catalog delta both exploit. The dispatcher owns the
// clock and the pre-sorted event feed; the TickEngine does everything
// else, so the serving layer (src/serve/) shares the exact machinery.

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/point.h"
#include "geo/travel.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "stream/events.h"
#include "stream/telemetry.h"
#include "stream/tick_engine.h"
#include "util/status.h"
#include "vdps/catalog.h"

namespace fta {

struct StreamConfig {
  /// Distribution center shared by every tick's instance.
  Point center;
  TravelModel travel;
  /// Tick t runs at absolute time t * tick_period.
  double tick_period = 1.0;
  /// Number of ticks to run (tick 0 included).
  size_t max_ticks = 16;
  ResolvePolicy policy = ResolvePolicy::kWarm;
  StreamSolver solver = StreamSolver::kFgt;
  /// Catalog configuration. kWarm requires a delta-patchable setup:
  /// beam_width == 0 and max_entries == 0 (checked at construction).
  VdpsConfig vdps;
  /// Base solver configurations; the per-tick seed overrides their `seed`
  /// (derived as SplitMix64(seed ^ (tick + 1)) so every tick and every
  /// stream seed gets an independent solver randomization).
  FgtConfig fgt;
  IegtConfig iegt;
  uint64_t seed = 42;
  /// Keep per-tick stats in the result (cheap; off for huge runs).
  bool record_ticks = true;
  /// Fold a digest of the ENTIRE catalog into the run digest every tick.
  /// O(catalog) per tick — the identity tests' instrument, off by default.
  bool digest_catalog = false;
  /// Live-telemetry sink: per-tick phase sketches, rolling windows, and
  /// the Prometheus publisher. Purely observational — telemetry on/off
  /// leaves the run digest unchanged (pinned by the identity battery).
  StreamTelemetryConfig telemetry;
};

/// Whole-run aggregation, mirrored into the obs metrics registry.
struct StreamCounters {
  uint64_t ticks = 0;
  uint64_t events_ingested = 0;
  uint64_t workers_arrived = 0;
  uint64_t workers_departed = 0;
  uint64_t tasks_arrived = 0;
  uint64_t tasks_expired = 0;
  /// Full catalog regenerations vs incremental delta applications.
  uint64_t regens = 0;
  uint64_t deltas = 0;
  uint64_t solver_rounds = 0;
  uint64_t converged_ticks = 0;
  /// Catalog maintenance wall time (Generate or ApplyDelta), and solver
  /// wall time, summed over ticks — the bench compares these across
  /// policies at matched churn.
  double catalog_ms = 0.0;
  double solve_ms = 0.0;
  /// Aggregated delta counters (kWarm only).
  DeltaCounters delta;

  /// Folds one finished tick into the aggregates. `events` is the number
  /// of feed events the tick drained (arrivals handed to the engine).
  void FoldTick(const TickStats& ts, size_t events);
};

struct StreamResult {
  StreamCounters counters;
  std::vector<TickStats> ticks;
  /// FNV-1a whole-run digest: every tick folds its instance shape and
  /// full assignment (stable ids, routes, payoff bits), plus the catalog
  /// digest when enabled. Two runs agree iff their observable behavior is
  /// bit-identical.
  uint64_t digest = 0;
};

/// The streaming dispatch loop. Step() advances one tick; Run() drives the
/// configured number of ticks and returns the aggregated result. Tests
/// step manually and inspect instance()/catalog()/last_assignment()
/// between ticks.
class StreamDispatcher {
 public:
  /// `events` must be sorted by non-decreasing time (checked). kWarm
  /// policy requires a delta-patchable VdpsConfig (checked).
  StreamDispatcher(StreamConfig config, std::vector<StreamEvent> events);

  bool Done() const { return tick_ >= config_.max_ticks; }

  /// Advances one tick: drains every arrival due by this tick's time into
  /// the engine, which expires dead elements, patches or regenerates the
  /// catalog, seeds and runs the solver, and folds the run digest.
  Status Step();

  /// Runs all remaining ticks and finalizes the result.
  StatusOr<StreamResult> Run();

  /// State after the last Step(), for tests and tooling.
  const Instance& instance() const { return engine_.instance(); }
  const VdpsCatalog& catalog() const { return engine_.catalog(); }
  const Assignment& last_assignment() const {
    return engine_.last_assignment();
  }
  const TickStats& last_tick() const { return last_tick_; }
  const StreamCounters& counters() const { return counters_; }
  uint64_t digest() const { return engine_.digest(); }
  /// Null when config.telemetry.enabled is false.
  const StreamTelemetry* telemetry() const { return telemetry_.get(); }

 private:
  StreamConfig config_;
  std::vector<StreamEvent> events_;
  size_t next_event_ = 0;
  size_t tick_ = 0;

  TickEngine engine_;
  StreamCounters counters_;
  std::vector<TickStats> ticks_;
  TickStats last_tick_;
  std::unique_ptr<StreamTelemetry> telemetry_;
};

}  // namespace fta

#endif  // FTA_STREAM_DISPATCHER_H_
