#ifndef FTA_STREAM_EVENTS_H_
#define FTA_STREAM_EVENTS_H_

// Event model of the streaming dispatch loop. Header-only so the workload
// generator (src/datagen) can produce events without linking the stream
// library.
//
// Time semantics — the load-bearing design decision of the subsystem:
//
//   * Queue lifetime is ABSOLUTE stream time: an element is live on tick
//     time `now` iff arrival <= now < expiry (half-open; pinned by
//     tests/stream_boundary semantics). The event loop adds and removes
//     elements by these absolute deadlines.
//
//   * The delivery window (`service_window`, the dp.e the catalog
//     consumes) is RELATIVE to the dispatch instant — the SLA "deliver
//     within X hours of being dispatched", matching Definition 3's
//     "expiring at time e measured from the assignment instant". It is a
//     fixed property of the order, so a surviving delivery point looks
//     byte-identical to the catalog on every tick — which is exactly what
//     makes incremental catalog deltas (VdpsCatalog::ApplyDelta) possible.
//     An absolute delivery deadline would shrink every tick, invalidating
//     every cached slack and forcing full regeneration.

#include <cstdint>

#include "geo/point.h"
#include "model/worker.h"
#include "util/math_util.h"

namespace fta {

enum class StreamEventKind : uint8_t {
  kWorkerArrival = 0,
  kTaskArrival = 1,
};

/// One arrival event of the stream. Departures and expirations are not
/// separate events: each arrival carries its own absolute leave time, so a
/// generator cannot produce dangling removals and "mass expiry" is simply
/// many elements sharing one deadline.
struct StreamEvent {
  /// Absolute arrival time.
  double time = 0.0;
  StreamEventKind kind = StreamEventKind::kTaskArrival;

  // -- kWorkerArrival --
  /// Location and maxDP of the arriving worker.
  Worker worker;
  /// Absolute time the worker leaves the pool (kInfinity = stays).
  double departure = kInfinity;

  // -- kTaskArrival --
  /// Delivery location of the arriving order.
  Point location;
  /// Reward for completing the order.
  double reward = 1.0;
  /// Absolute time the undispatched order is canceled and leaves the
  /// queue (kInfinity = waits forever).
  double queue_expiry = kInfinity;
  /// Relative delivery deadline once dispatched (the dp.e the catalog
  /// sees). Must be positive and finite.
  double service_window = 1.0;
};

}  // namespace fta

#endif  // FTA_STREAM_EVENTS_H_
