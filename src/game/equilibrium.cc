#include "game/equilibrium.h"

#include <algorithm>

#include "game/best_response.h"
#include "game/fgt.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace fta {
namespace {

/// Rebuilds a JointState from an assignment's routes by looking each route
/// up in the catalog. Aborts if a route is not a catalog strategy.
JointState StateFromAssignment(const Instance& instance,
                               const VdpsCatalog& catalog,
                               const Assignment& assignment) {
  JointState state(instance, catalog);
  for (size_t w = 0; w < assignment.num_workers(); ++w) {
    const Route& route = assignment.route(w);
    if (route.empty()) continue;
    int32_t idx = kNullStrategy;
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      if (catalog.strategies(w)[i].route == route) {
        idx = static_cast<int32_t>(i);
        break;
      }
    }
    FTA_CHECK_MSG(idx != kNullStrategy,
                  "assignment route is not a catalog strategy");
    state.Apply(w, idx);
  }
  return state;
}

}  // namespace

EquilibriumReport AnalyzeEquilibrium(const Instance& instance,
                                     const VdpsCatalog& catalog,
                                     const Assignment& assignment,
                                     const IauParams& params,
                                     const BestResponseConfig& engine_config) {
  JointState state = StateFromAssignment(instance, catalog, assignment);
  BestResponseEngine engine(state, params, engine_config);
  EquilibriumReport report;
  report.regrets.resize(instance.num_workers());
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    const BestResponseOutcome outcome = engine.Evaluate(w);
    WorkerRegret& regret = report.regrets[w];
    regret.utility = outcome.incumbent_utility;
    regret.best_response_utility = outcome.best_utility;
    regret.regret = regret.best_response_utility - regret.utility;
    report.max_regret = std::max(report.max_regret, regret.regret);
    if (DefinitelyGreater(regret.best_response_utility, regret.utility)) {
      ++report.deviating_workers;
    }
  }
  report.is_nash = report.deviating_workers == 0;
  return report;
}

namespace {

struct NashSearch {
  const Instance* instance;
  const VdpsCatalog* catalog;
  JointState state;
  BestResponseEngine engine;
  NashEnumeration result;
  size_t max_states;
  bool capped = false;

  NashSearch(const Instance& inst, const VdpsCatalog& cat,
             const IauParams& p, size_t cap,
             const BestResponseConfig& engine_config)
      : instance(&inst),
        catalog(&cat),
        state(inst, cat),
        engine(state, p, engine_config),
        max_states(cap) {}

  void Recurse(size_t w) {
    if (capped) return;
    if (w == instance->num_workers()) {
      ++result.states_explored;
      if (result.states_explored >= max_states) capped = true;
      if (engine.IsNash()) {
        result.equilibria.push_back(state.ToAssignment());
      }
      return;
    }
    Recurse(w + 1);  // null strategy
    const auto& strategies = catalog->strategies(w);
    for (size_t i = 0; i < strategies.size() && !capped; ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (!engine.IsAvailableCached(w, idx)) continue;
      engine.Apply(w, idx);
      Recurse(w + 1);
      engine.Apply(w, kNullStrategy);
    }
  }
};

}  // namespace

NashEnumeration EnumeratePureNash(const Instance& instance,
                                  const VdpsCatalog& catalog,
                                  const IauParams& params, size_t max_states,
                                  const BestResponseConfig& engine_config) {
  NashSearch search(instance, catalog, params, max_states, engine_config);
  search.Recurse(0);
  search.result.complete = !search.capped;
  return search.result;
}

}  // namespace fta
