#include "game/equilibrium.h"

#include <algorithm>

#include "game/fgt.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace fta {
namespace {

/// Rebuilds a JointState from an assignment's routes by looking each route
/// up in the catalog. Aborts if a route is not a catalog strategy.
JointState StateFromAssignment(const Instance& instance,
                               const VdpsCatalog& catalog,
                               const Assignment& assignment) {
  JointState state(instance, catalog);
  for (size_t w = 0; w < assignment.num_workers(); ++w) {
    const Route& route = assignment.route(w);
    if (route.empty()) continue;
    int32_t idx = kNullStrategy;
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      if (catalog.strategies(w)[i].route == route) {
        idx = static_cast<int32_t>(i);
        break;
      }
    }
    FTA_CHECK_MSG(idx != kNullStrategy,
                  "assignment route is not a catalog strategy");
    state.Apply(w, idx);
  }
  return state;
}

}  // namespace

EquilibriumReport AnalyzeEquilibrium(const Instance& instance,
                                     const VdpsCatalog& catalog,
                                     const Assignment& assignment,
                                     const IauParams& params) {
  JointState state = StateFromAssignment(instance, catalog, assignment);
  EquilibriumReport report;
  report.regrets.resize(instance.num_workers());
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    std::vector<double> others;
    others.reserve(instance.num_workers());
    for (size_t j = 0; j < instance.num_workers(); ++j) {
      if (j != w) others.push_back(state.payoff_of(j));
    }
    const OthersView view(std::move(others));
    WorkerRegret& regret = report.regrets[w];
    regret.utility = view.Iau(state.payoff_of(w), params);
    regret.best_response_utility = std::max(regret.utility,
                                            view.Iau(0.0, params));
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (idx == state.strategy_of(w)) continue;
      if (!state.IsAvailable(w, idx)) continue;
      regret.best_response_utility =
          std::max(regret.best_response_utility,
                   view.Iau(catalog.strategies(w)[i].payoff, params));
    }
    regret.regret = regret.best_response_utility - regret.utility;
    report.max_regret = std::max(report.max_regret, regret.regret);
    if (DefinitelyGreater(regret.best_response_utility, regret.utility)) {
      ++report.deviating_workers;
    }
  }
  report.is_nash = report.deviating_workers == 0;
  return report;
}

namespace {

struct NashSearch {
  const Instance* instance;
  const VdpsCatalog* catalog;
  const IauParams* params;
  JointState state;
  NashEnumeration result;
  size_t max_states;
  bool capped = false;

  NashSearch(const Instance& inst, const VdpsCatalog& cat,
             const IauParams& p, size_t cap)
      : instance(&inst),
        catalog(&cat),
        params(&p),
        state(inst, cat),
        max_states(cap) {}

  void Recurse(size_t w) {
    if (capped) return;
    if (w == instance->num_workers()) {
      ++result.states_explored;
      if (result.states_explored >= max_states) capped = true;
      if (IsPureNashEquilibrium(state, *params)) {
        result.equilibria.push_back(state.ToAssignment());
      }
      return;
    }
    Recurse(w + 1);  // null strategy
    const auto& strategies = catalog->strategies(w);
    for (size_t i = 0; i < strategies.size() && !capped; ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (!state.IsAvailable(w, idx)) continue;
      state.Apply(w, idx);
      Recurse(w + 1);
      state.Apply(w, kNullStrategy);
    }
  }
};

}  // namespace

NashEnumeration EnumeratePureNash(const Instance& instance,
                                  const VdpsCatalog& catalog,
                                  const IauParams& params,
                                  size_t max_states) {
  NashSearch search(instance, catalog, params, max_states);
  search.Recurse(0);
  search.result.complete = !search.capped;
  return search.result;
}

}  // namespace fta
