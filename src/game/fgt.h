#ifndef FTA_GAME_FGT_H_
#define FTA_GAME_FGT_H_

#include <vector>

#include "game/best_response.h"
#include "game/iau.h"
#include "game/joint_state.h"
#include "game/trace.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Order in which workers take their best-response turns within a round.
/// The potential-game convergence guarantee holds for any order; the order
/// selects *which* equilibrium is reached (and how fast).
enum class UpdateOrder {
  /// Fixed worker-id order — the paper's "played in sequence".
  kSequential,
  /// A fresh uniformly random permutation every round.
  kRandomPermutation,
  /// Workers with the lowest current payoff move first each round (gives
  /// disadvantaged workers first pick; an equilibrium-selection heuristic).
  kLowestPayoffFirst,
};

/// Configuration of the Fairness-aware Game-Theoretic solver (Algorithm 2).
struct FgtConfig {
  /// Inequity-aversion weights; the paper uses 0.5 / 0.5. An exact
  /// potential (guaranteed Nash convergence) requires alpha == beta.
  IauParams iau;
  /// Best-response turn order within a round.
  UpdateOrder order = UpdateOrder::kSequential;
  /// Hard cap on best-response rounds (a round updates every worker once).
  int max_rounds = 200;
  /// Seed for the random initial singleton assignment.
  uint64_t seed = 42;
  /// Record per-round statistics (Figure 12).
  bool record_trace = false;
  /// Optional early termination (patience = 0 disables; see EarlyStopRule).
  EarlyStopRule early_stop;
  /// Best-response engine tuning (threads, incremental availability index).
  /// Assignments are bit-identical across all engine settings.
  BestResponseConfig engine;
  /// Warm-start joint strategy (one index into the catalog's per-worker
  /// strategy lists, kNullStrategy for idle; must be Definition-8 valid).
  /// When set it replaces the random singleton initialization — the
  /// streaming dispatcher seeds each tick's solve from the previous
  /// equilibrium projected through the catalog delta. Not owned; must
  /// outlive the solve call.
  const std::vector<int32_t>* warm_start = nullptr;
};

/// Fairness-aware Game-Theoretic approach (Algorithm 2): random singleton
/// initialization, then sequential asynchronous best responses on IAU until
/// no worker changes strategy (pure Nash equilibrium) or max_rounds.
GameResult SolveFgt(const Instance& instance, const VdpsCatalog& catalog,
                    const FgtConfig& config = FgtConfig());

/// The best-response strategy index of worker w in the given state
/// (Equation 10): the available VDPS (or kNullStrategy) maximizing the
/// worker's IAU against the other workers' current payoffs. Ties keep the
/// current strategy; remaining ties pick the lowest index. Convenience
/// wrapper over a one-shot BestResponseEngine scan.
int32_t BestResponse(const JointState& state, size_t w,
                     const IauParams& params);

/// True if no worker has a strictly utility-improving available deviation —
/// i.e. the state is a pure Nash equilibrium of the FTA game (used by tests
/// and the convergence bench).
bool IsPureNashEquilibrium(const JointState& state, const IauParams& params);

}  // namespace fta

#endif  // FTA_GAME_FGT_H_
