#ifndef FTA_GAME_TRACE_H_
#define FTA_GAME_TRACE_H_

#include <cstddef>
#include <vector>

#include "game/payoff_ledger.h"
#include "model/assignment.h"

namespace fta {

/// Work counters of the BestResponseEngine, exposed through the game trace
/// for the Figure-12 convergence benches. Purely observational: two runs
/// that differ only in these counters produced identical assignments.
struct BestResponseCounters {
  /// Strategies whose availability was recomputed from delivery-point
  /// ownership (the full DP walk).
  uint64_t strategies_scanned = 0;
  /// Strategies whose availability was served by the incremental index
  /// (cache hit, no DP walk).
  uint64_t cache_skips = 0;
  /// Candidate fan-outs that ran on the thread pool.
  uint64_t parallel_batches = 0;
  /// SortedIauBatch calls issued by the candidate scan (one per gathered
  /// availability batch; see game/iau_kernels.h).
  uint64_t simd_batches = 0;
  /// Candidate utilities produced by those batches (lanes).
  uint64_t simd_lanes = 0;
  /// Subset of simd_batches dispatched to the AVX2 kernels — 0 on a scalar
  /// host / forced-scalar run, == simd_batches under AVX2 dispatch, so
  /// benches record which path produced their numbers.
  uint64_t simd_avx2_batches = 0;
  /// Sorted-payoff-ledger savings (sorts and allocations the rebuild path
  /// would have paid; see game/payoff_ledger.h).
  LedgerCounters ledger;

  BestResponseCounters& operator+=(const BestResponseCounters& o) {
    strategies_scanned += o.strategies_scanned;
    cache_skips += o.cache_skips;
    parallel_batches += o.parallel_batches;
    simd_batches += o.simd_batches;
    simd_lanes += o.simd_lanes;
    simd_avx2_batches += o.simd_avx2_batches;
    ledger += o.ledger;
    return *this;
  }
  friend BestResponseCounters operator-(BestResponseCounters a,
                                        const BestResponseCounters& b) {
    a.strategies_scanned -= b.strategies_scanned;
    a.cache_skips -= b.cache_skips;
    a.parallel_batches -= b.parallel_batches;
    a.simd_batches -= b.simd_batches;
    a.simd_lanes -= b.simd_lanes;
    a.simd_avx2_batches -= b.simd_avx2_batches;
    a.ledger = a.ledger - b.ledger;
    return a;
  }
};

/// Per-iteration snapshot of a game-theoretic solver; one row of Figure 12.
struct IterationStats {
  int iteration = 0;
  /// P_dif of the current joint strategy.
  double payoff_difference = 0.0;
  /// Mean worker payoff of the current joint strategy.
  double average_payoff = 0.0;
  /// Exact potential Φ (FGT only; 0 for IEGT).
  double potential = 0.0;
  /// Number of workers that changed strategy in this iteration.
  size_t num_changes = 0;
  /// Engine work done during this iteration (delta, not cumulative).
  BestResponseCounters engine;
};

/// Outcome of a game-theoretic solver run.
struct GameResult {
  Assignment assignment;
  /// Iterations actually executed (the paper's T factor).
  int rounds = 0;
  /// True if the termination condition (equilibrium) was reached before the
  /// round cap.
  bool converged = false;
  /// True if the run was cut short by the early-termination rule (the
  /// paper's future-work efficiency extension) rather than by reaching an
  /// equilibrium.
  bool early_stopped = false;
  /// Per-iteration statistics; filled only when the config asks for it.
  std::vector<IterationStats> trace;
  /// Total engine work across the whole run (always filled).
  BestResponseCounters engine;
};

/// Early-termination rule shared by FGT and IEGT (the paper's future-work
/// item "improve the game-theoretic algorithm's efficiency by enabling
/// early termination of iterations"): stop once the payoff difference has
/// failed to improve by more than `tolerance` for `patience` consecutive
/// rounds. patience == 0 disables the rule.
struct EarlyStopRule {
  double tolerance = 1e-3;
  int patience = 0;
};

/// Stateful evaluator of an EarlyStopRule over a run's P_dif sequence.
class EarlyStopMonitor {
 public:
  explicit EarlyStopMonitor(const EarlyStopRule& rule) : rule_(rule) {}

  /// Feeds the current round's payoff difference; returns true when the
  /// rule says to stop.
  bool ShouldStop(double payoff_difference) {
    if (rule_.patience <= 0) return false;
    if (payoff_difference < best_ - rule_.tolerance) {
      best_ = payoff_difference;
      stale_rounds_ = 0;
      return false;
    }
    ++stale_rounds_;
    return stale_rounds_ >= rule_.patience;
  }

 private:
  EarlyStopRule rule_;
  double best_ = 1e300;
  int stale_rounds_ = 0;
};

}  // namespace fta

#endif  // FTA_GAME_TRACE_H_
