#ifndef FTA_GAME_PRIORITY_H_
#define FTA_GAME_PRIORITY_H_

#include <vector>

#include "game/fgt.h"
#include "game/iau.h"
#include "game/trace.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Priority-aware fairness — the paper's first named future-work direction
/// ("introduce additional descriptive models of fairness, e.g.,
/// priority-aware fairness, into spatial crowdsourcing task assignment").
///
/// Each worker carries a priority weight p_w > 0 (seniority, rating,
/// contract tier). Fairness now means payoffs *proportional to priority*:
/// the equalized quantity is the normalized payoff P̂_w = P_w / p_w. All
/// the machinery of the symmetric case carries over in normalized space —
/// including the exact potential — because the normalization is a
/// per-player constant rescaling of payoffs.

/// Validates priorities (one strictly positive weight per worker).
bool ValidPriorities(const std::vector<double>& priorities,
                     size_t num_workers);

/// Priority-weighted payoff difference: the mean absolute pairwise
/// difference of normalized payoffs P_w / p_w. Reduces to Equation 2 when
/// all priorities are 1.
double PriorityPayoffDifference(const std::vector<double>& payoffs,
                                const std::vector<double>& priorities);

/// Priority-aware IAU of worker i: Equation 5 applied to normalized
/// payoffs, rescaled back by p_i so that utilities stay comparable to raw
/// payoffs: U_i = p_i · IAU(P̂_i among P̂_others).
double PriorityIau(double own_payoff, double own_priority,
                   const std::vector<double>& other_payoffs,
                   const std::vector<double>& other_priorities,
                   const IauParams& params);

/// Configuration of the priority-aware FGT variant.
struct PriorityFgtConfig {
  /// One weight per worker; must validate via ValidPriorities.
  std::vector<double> priorities;
  IauParams iau;
  int max_rounds = 200;
  uint64_t seed = 42;
  bool record_trace = false;
};

/// Priority-aware FGT: sequential best responses on the priority-aware IAU
/// until a pure Nash equilibrium. With all-ones priorities this is exactly
/// SolveFgt. The trace's payoff_difference column reports the
/// priority-weighted P_dif.
///
/// NOTE (reproduction finding, see DESIGN.md): for beta < 1 the IAU of
/// Equation 5 is *strictly increasing* in the worker's own payoff
/// (dU/dP = 1 + (alpha/m)·n_above − (beta/m)·n_below ≥ 1 − beta > 0), so
/// every best response is simply the max-payoff available strategy, and a
/// per-worker monotone rescaling — priorities — cannot change any argmax:
/// with the paper's alpha = beta = 0.5, SolvePriorityFgt coincides with
/// SolveFgt. Fairness in the best-response game comes from the sequential
/// dynamics, not from per-move trade-offs. For priorities to bite, use the
/// evolutionary variant below, whose *selection pressure* genuinely
/// depends on normalized payoffs.
GameResult SolvePriorityFgt(const Instance& instance,
                            const VdpsCatalog& catalog,
                            const PriorityFgtConfig& config);

/// Configuration of the priority-aware IEGT variant.
struct PriorityIegtConfig {
  /// One weight per worker; must validate via ValidPriorities.
  std::vector<double> priorities;
  int max_rounds = 500;
  uint64_t seed = 42;
  bool record_trace = false;
};

/// Priority-aware IEGT: replicator dynamics on *normalized* payoffs. A
/// worker is pressured to evolve when P_w / p_w falls below the population
/// average of normalized payoffs, so high-priority workers keep climbing
/// to proportionally higher payoffs while low-priority workers settle
/// earlier; the improved evolutionary equilibrium equalizes P_w / p_w.
/// With all-ones priorities this is exactly SolveIegt. The trace's
/// payoff_difference column reports the priority-weighted P_dif.
GameResult SolvePriorityIegt(const Instance& instance,
                             const VdpsCatalog& catalog,
                             const PriorityIegtConfig& config);

}  // namespace fta

#endif  // FTA_GAME_PRIORITY_H_
