#ifndef FTA_GAME_IAU_H_
#define FTA_GAME_IAU_H_

#include <cstddef>
#include <vector>

namespace fta {

/// Parameters of the Inequity Aversion based Utility (Equation 5). The
/// paper's experiments fix alpha = beta = 0.5; alpha weights disadvantageous
/// inequity (others earn more: MP), beta advantageous inequity (LP).
struct IauParams {
  double alpha = 0.5;
  double beta = 0.5;
};

/// IAU of a worker with payoff `own` among `others` (the remaining |W|-1
/// workers' payoffs), directly from Equations 5-7. O(|others|).
///
/// TEST ORACLE ONLY. Production code evaluates through SortedIau /
/// SortedIauBatch (one shared kernel instance, bit-identical across the
/// ledger, rebuild, scalar, and AVX2 paths); this naive transliteration of
/// the paper's equations survives as the independent cross-check in
/// game_test / payoff_ledger_test / property_test and the BM_IauNaive
/// baseline. Its accumulation order differs from the sorted kernels', so
/// results agree only to tolerance, never bit for bit.
double Iau(double own, const std::vector<double>& others,
           const IauParams& params);

/// Shared evaluation kernels over an ascending payoff sequence with prefix
/// sums (prefix[k] = sum of the first k values; prefix has n + 1 entries).
/// Both OthersView and the PayoffLedger's exclude-one scratch view
/// (game/payoff_ledger.h) evaluate through exactly these functions — one
/// compiled instance — which is what makes the ledger fast path
/// bit-identical to the rebuild path by construction.
double SortedMp(const double* values, size_t n, const double* prefix,
                double own);
double SortedLp(const double* values, size_t n, const double* prefix,
                double own);
double SortedIau(const double* values, size_t n, const double* prefix,
                 double own, const IauParams& params);

/// Precomputed view over the *other* workers' payoffs that evaluates IAU of
/// a candidate own-payoff in O(log |others|). Build once per best-response
/// call, evaluate once per candidate strategy.
class OthersView {
 public:
  /// `others` are the payoffs of every worker except the responder.
  explicit OthersView(std::vector<double> others);

  size_t size() const { return sorted_.size(); }

  /// MP (Equation 6): total payoff excess of others above `own`.
  double Mp(double own) const;
  /// LP (Equation 7): total payoff excess of `own` above others.
  double Lp(double own) const;
  /// IAU (Equation 5) for a candidate own payoff.
  double Iau(double own, const IauParams& params) const;

  /// Raw ascending values / prefix sums (size() and size() + 1 elements) —
  /// the inputs SortedIauBatch streams for the engine's batched candidate
  /// scan.
  const double* sorted_values() const { return sorted_.data(); }
  const double* prefix_sums() const { return prefix_.data(); }

 private:
  std::vector<double> sorted_;  // ascending
  std::vector<double> prefix_;  // prefix_[k] = sum of first k
};

}  // namespace fta

#endif  // FTA_GAME_IAU_H_
