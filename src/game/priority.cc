#include "game/priority.h"

#include <algorithm>
#include <cmath>

#include "game/init.h"
#include "game/joint_state.h"
#include "game/potential.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {

bool ValidPriorities(const std::vector<double>& priorities,
                     size_t num_workers) {
  if (priorities.size() != num_workers) return false;
  for (double p : priorities) {
    if (!(p > 0.0) || std::isinf(p) || std::isnan(p)) return false;
  }
  return true;
}

namespace {

std::vector<double> Normalize(const std::vector<double>& payoffs,
                              const std::vector<double>& priorities) {
  std::vector<double> normalized(payoffs.size());
  for (size_t i = 0; i < payoffs.size(); ++i) {
    normalized[i] = payoffs[i] / priorities[i];
  }
  return normalized;
}

}  // namespace

double PriorityPayoffDifference(const std::vector<double>& payoffs,
                                const std::vector<double>& priorities) {
  FTA_CHECK(payoffs.size() == priorities.size());
  return MeanAbsolutePairwiseDifference(Normalize(payoffs, priorities));
}

double PriorityIau(double own_payoff, double own_priority,
                   const std::vector<double>& other_payoffs,
                   const std::vector<double>& other_priorities,
                   const IauParams& params) {
  FTA_CHECK(other_payoffs.size() == other_priorities.size());
  FTA_CHECK(own_priority > 0.0);
  // OthersView sorts the normalized payoffs and serves the O(log n)
  // rank-based kernels — the legacy O(n) Iau survives only as the test
  // oracle (game/iau.h).
  const OthersView view(Normalize(other_payoffs, other_priorities));
  return own_priority * view.Iau(own_payoff / own_priority, params);
}

GameResult SolvePriorityFgt(const Instance& instance,
                            const VdpsCatalog& catalog,
                            const PriorityFgtConfig& config) {
  FTA_CHECK_MSG(ValidPriorities(config.priorities, instance.num_workers()),
                "need one strictly positive priority per worker");
  JointState state(instance, catalog);
  Rng rng(config.seed);
  RandomSingletonInit(state, rng);

  const auto snapshot = [&](int round, size_t changes) {
    IterationStats s;
    s.iteration = round;
    // Normalize and sort once per snapshot: P_dif and Φ both need the
    // normalized payoffs' pairwise spread, so they share one sorted copy
    // (this used to normalize twice and sort twice). Bit-identical to the
    // old two-pass form — same sort, same kernels, same value sequences.
    const std::vector<double> normalized =
        Normalize(state.payoffs(), config.priorities);
    std::vector<double> sorted = normalized;
    std::sort(sorted.begin(), sorted.end());
    const double p_dif = MeanAbsolutePairwiseDifferenceSorted(sorted);
    s.payoff_difference = p_dif;
    s.average_payoff = Mean(state.payoffs());
    s.potential = ExactPotential(normalized, config.iau.alpha, p_dif);
    s.num_changes = changes;
    return s;
  };

  GameResult result;
  if (config.record_trace) result.trace.push_back(snapshot(0, 0));

  // Best responses on the *normalized* payoffs: build the OthersView over
  // P_j / p_j once per responder, evaluate each candidate's P / p_i.
  for (int round = 1; round <= config.max_rounds; ++round) {
    size_t changes = 0;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      std::vector<double> others;
      others.reserve(instance.num_workers() - 1);
      for (size_t j = 0; j < instance.num_workers(); ++j) {
        if (j != w) others.push_back(state.payoff_of(j) /
                                     config.priorities[j]);
      }
      const OthersView view(std::move(others));
      const double p_w = config.priorities[w];
      const int32_t current = state.strategy_of(w);
      int32_t best_idx = current;
      double best_u = view.Iau(state.payoff_of(w) / p_w, config.iau);
      if (current != kNullStrategy) {
        const double null_u = view.Iau(0.0, config.iau);
        if (DefinitelyGreater(null_u, best_u)) {
          best_idx = kNullStrategy;
          best_u = null_u;
        }
      }
      const auto& strategies = catalog.strategies(w);
      for (size_t i = 0; i < strategies.size(); ++i) {
        const int32_t idx = static_cast<int32_t>(i);
        if (idx == current) continue;
        if (!state.IsAvailable(w, idx)) continue;
        const double u = view.Iau(strategies[i].payoff / p_w, config.iau);
        if (DefinitelyGreater(u, best_u)) {
          best_idx = idx;
          best_u = u;
        }
      }
      if (best_idx != current) {
        state.Apply(w, best_idx);
        ++changes;
      }
    }
    result.rounds = round;
    if (config.record_trace) result.trace.push_back(snapshot(round, changes));
    if (changes == 0) {
      result.converged = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  return result;
}

GameResult SolvePriorityIegt(const Instance& instance,
                             const VdpsCatalog& catalog,
                             const PriorityIegtConfig& config) {
  FTA_CHECK_MSG(ValidPriorities(config.priorities, instance.num_workers()),
                "need one strictly positive priority per worker");
  JointState state(instance, catalog);
  Rng rng(config.seed);
  RandomSingletonInit(state, rng);

  const auto snapshot = [&](int round, size_t changes) {
    IterationStats s;
    s.iteration = round;
    s.payoff_difference =
        PriorityPayoffDifference(state.payoffs(), config.priorities);
    s.average_payoff = Mean(state.payoffs());
    s.num_changes = changes;
    return s;
  };

  GameResult result;
  if (config.record_trace) result.trace.push_back(snapshot(0, 0));

  std::vector<int32_t> better;
  for (int round = 1; round <= config.max_rounds; ++round) {
    // Selection pressure compares *normalized* payoffs to their mean: the
    // evolutionary target state is P_w proportional to p_w.
    const double avg_normalized =
        Mean(Normalize(state.payoffs(), config.priorities));
    size_t changes = 0;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      const double payoff = state.payoff_of(w);
      if (payoff / config.priorities[w] >= avg_normalized - kEps) continue;
      better.clear();
      const auto& strategies = catalog.strategies(w);
      for (size_t i = 0; i < strategies.size(); ++i) {
        const int32_t idx = static_cast<int32_t>(i);
        if (idx == state.strategy_of(w)) continue;
        if (strategies[i].payoff <= payoff + kEps) break;  // sorted desc
        if (state.IsAvailable(w, idx)) better.push_back(idx);
      }
      if (!better.empty()) {
        state.Apply(w, better[rng.Index(better.size())]);
        ++changes;
      }
    }
    result.rounds = round;
    if (config.record_trace) result.trace.push_back(snapshot(round, changes));
    if (changes == 0) {
      result.converged = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  return result;
}

}  // namespace fta
