#ifndef FTA_GAME_IAU_KERNELS_H_
#define FTA_GAME_IAU_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "game/iau.h"

namespace fta {

/// Batched rank computation over an ascending sequence:
/// out_counts[j] = |{ i : values[i] < owns[j] }| — exactly the index
/// std::lower_bound(values, values + n, owns[j]) returns. Counts are exact
/// integers (ties are excluded by `<` on both paths, -0.0 < +0.0 is false on
/// both paths, NaN compares false on both paths), so the scalar
/// (lower_bound) and AVX2 (compare + mask-popcount) implementations agree
/// by construction; the dispatch choice can never change a result.
void CountLessBatch(const double* values, size_t n, const double* owns,
                    size_t count, uint32_t* out_counts);

/// CountLessBatch for owns that are NON-INCREASING (the engine's gathered
/// candidate payoffs stream from the catalog's payoff-descending strategy
/// order, so its batches always are): the ranks of ascending owns form a
/// monotone staircase, so ONE merge pointer over `values` serves the whole
/// batch — O(n + count) total instead of count * log n lower_bounds. Each
/// count is still the exact lower_bound index (the advance stops at the
/// first value with !(value < own), the same `<` on every path), so the
/// scalar walk and the AVX2 variant (advance four lanes per
/// compare + movemask, popcount of the all-true prefix) agree by
/// construction. Callers must guarantee monotonicity; SortedIauBatch
/// verifies it in O(count) and falls back to CountLessBatch otherwise.
void CountLessBatchSortedDesc(const double* values, size_t n,
                              const double* owns, size_t count,
                              uint32_t* out_counts);

/// Batched SortedIau: out[j] = SortedIau(values, n, prefix, owns[j], params)
/// bit for bit — the ranks come from CountLessBatch and each lane then runs
/// the identical (prefix[n] - prefix[k]) - above*own arithmetic the scalar
/// kernel runs, with alpha/m and beta/m hoisted as the single kernel hoists
/// them. This is BestResponseEngine's candidate-scan kernel: one call per
/// gathered availability batch instead of one virtual-free-but-branchy
/// lower_bound per candidate. No allocations (fixed-size internal chunking).
void SortedIauBatch(const double* values, size_t n, const double* prefix,
                    const IauParams& params, const double* owns, size_t count,
                    double* out);

/// Fused batch + reduce: computes the SortedIauBatch utilities of `owns`
/// (bit for bit — same ranks, same per-lane expression trees) and returns
/// the EARLIEST position attaining the maximal utility, writing that
/// utility to *best_utility. This is exactly the result of folding the
/// lanes in ascending position through the engine's Better() order
/// (utility desc, position asc), so the fused kernel can replace
/// utils-array + fold without moving a single bit: the max is a total
/// order, associative and commutative, and each lane's utility is
/// identical on every path. The AVX2 variant runs four lanes per step —
/// rank gathers, the utility arithmetic, and a masked earliest-max blend —
/// with per-lane trees unchanged (vector lanes are independent scalars;
/// the kernel TUs compile with -ffp-contract=off so no FMA contraction can
/// reassociate them). Requires count >= 1. No allocations.
size_t SortedIauBatchArgmax(const double* values, size_t n,
                            const double* prefix, const IauParams& params,
                            const double* owns, size_t count,
                            double* best_utility);

namespace iau_internal {

/// True when owns[0] >= owns[1] >= ... (the catalog's payoff-descending
/// strategy order): unlocks the O(n + count) merge rank kernels. Any NaN
/// fails the chain, routing the batch to the generic per-own kernels.
inline bool IsNonIncreasing(const double* owns, size_t count) {
  for (size_t j = 1; j < count; ++j) {
    if (!(owns[j] <= owns[j - 1])) return false;
  }
  return true;
}

/// Scalar reference path: one std::lower_bound per own.
void CountLessBatchScalar(const double* values, size_t n, const double* owns,
                          size_t count, uint32_t* out_counts);

/// Scalar merge path for non-increasing owns: walks owns in reverse
/// (ascending) advancing one shared pointer.
void CountLessBatchSortedDescScalar(const double* values, size_t n,
                                    const double* owns, size_t count,
                                    uint32_t* out_counts);

#ifdef FTA_SIMD_AVX2
/// AVX2 path, compiled only in the sanctioned -mavx2 TU
/// (iau_kernels_avx2.cc): 4 own lanes stream the value array once with
/// _CMP_LT_OQ compares accumulated as 64-bit mask subtractions.
void CountLessBatchAvx2(const double* values, size_t n, const double* owns,
                        size_t count, uint32_t* out_counts);

/// AVX2 merge path for non-increasing owns: the shared pointer advances
/// four values per _CMP_LT_OQ compare + movemask, stepping by the
/// popcount of the mask's all-true prefix.
void CountLessBatchSortedDescAvx2(const double* values, size_t n,
                                  const double* owns, size_t count,
                                  uint32_t* out_counts);

/// AVX2 fused argmax over one rank chunk: four utility lanes per step
/// (prefix gathers + the scalar-identical expression tree) with a masked
/// earliest-max blend; positions are chunk-relative. Requires c >= 1.
size_t SortedIauChunkArgmaxAvx2(const double* prefix, double total,
                                double m, double alpha_m, double beta_m,
                                const double* owns, const uint32_t* counts,
                                size_t c, double* best_utility);
#endif

}  // namespace iau_internal
}  // namespace fta

#endif  // FTA_GAME_IAU_KERNELS_H_
