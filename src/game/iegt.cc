#include "game/iegt.h"

#include <vector>

#include "game/init.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {

std::vector<double> ReplicatorDynamics(const JointState& state) {
  const std::vector<double>& payoffs = state.payoffs();
  const size_t n = payoffs.size();
  std::vector<double> dynamics(n, 0.0);
  if (n == 0) return dynamics;
  const double avg = Mean(payoffs);
  const double share = 1.0 / static_cast<double>(n);  // σ_km, Equations 12-13
  for (size_t w = 0; w < n; ++w) {
    // Workers on the null strategy hold no population share of any VDPS.
    const double sigma = state.strategy_of(w) == kNullStrategy ? 0.0 : share;
    dynamics[w] = sigma * (payoffs[w] - avg);  // Equation 11
  }
  return dynamics;
}

namespace {

IterationStats Snapshot(const JointState& state, int iteration,
                        size_t num_changes) {
  IterationStats s;
  s.iteration = iteration;
  s.payoff_difference = MeanAbsolutePairwiseDifference(state.payoffs());
  s.average_payoff = Mean(state.payoffs());
  s.num_changes = num_changes;
  return s;
}

}  // namespace

GameResult SolveIegt(const Instance& instance, const VdpsCatalog& catalog,
                     const IegtConfig& config) {
  JointState state(instance, catalog);
  Rng rng(config.seed);
  RandomSingletonInit(state, rng);

  GameResult result;
  if (config.record_trace) result.trace.push_back(Snapshot(state, 0, 0));

  std::vector<int32_t> better;  // reused candidate buffer
  EarlyStopMonitor early(config.early_stop);
  for (int round = 1; round <= config.max_rounds; ++round) {
    // Ū is computed once per iteration: all players compare their utility
    // with the average utility of the whole population (Section VI-C).
    const double avg = Mean(state.payoffs());
    size_t changes = 0;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      // σ̇_km < 0 ⇔ the worker's payoff is below the population average
      // (null-strategy workers have σ = 0 but may still enter the game by
      // natural selection when any positive-payoff strategy is available —
      // σ̇ = 0 with payoff 0 is never better than evolving).
      const double payoff = state.payoff_of(w);
      const bool pressured = payoff < avg - kEps;
      if (!pressured) continue;
      better.clear();
      const auto& strategies = catalog.strategies(w);
      for (size_t i = 0; i < strategies.size(); ++i) {
        const int32_t idx = static_cast<int32_t>(i);
        if (idx == state.strategy_of(w)) continue;
        if (strategies[i].payoff <= payoff + kEps) break;  // sorted desc
        if (state.IsAvailable(w, idx)) better.push_back(idx);
      }
      if (!better.empty()) {
        state.Apply(w, better[rng.Index(better.size())]);
        ++changes;
      }
    }
    result.rounds = round;
    if (config.record_trace) {
      result.trace.push_back(Snapshot(state, round, changes));
    }
    if (changes == 0) {
      // Improved evolutionary equilibrium: σ̇_k(t) = 0 or st^t == st^{t-1}.
      result.converged = true;
      break;
    }
    if (early.ShouldStop(MeanAbsolutePairwiseDifference(state.payoffs()))) {
      result.early_stopped = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  return result;
}

}  // namespace fta
