#include "game/iegt.h"

#include <vector>

#include "game/best_response.h"
#include "game/init.h"
#include "game/solver_metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {

std::vector<double> ReplicatorDynamics(const JointState& state) {
  const std::vector<double>& payoffs = state.payoffs();
  const size_t n = payoffs.size();
  std::vector<double> dynamics(n, 0.0);
  if (n == 0) return dynamics;
  const double avg = Mean(payoffs);
  const double share = 1.0 / static_cast<double>(n);  // σ_km, Equations 12-13
  for (size_t w = 0; w < n; ++w) {
    // Workers on the null strategy hold no population share of any VDPS.
    const double sigma = state.strategy_of(w) == kNullStrategy ? 0.0 : share;
    dynamics[w] = sigma * (payoffs[w] - avg);  // Equation 11
  }
  return dynamics;
}

namespace {

IterationStats Snapshot(const JointState& state, int iteration,
                        size_t num_changes, double p_dif,
                        const BestResponseCounters& engine_delta) {
  // `p_dif` comes from the engine's payoff ledger, computed once per round
  // and shared with the early-stop rule (see SolveFgt).
  IterationStats s;
  s.iteration = iteration;
  s.payoff_difference = p_dif;
  s.average_payoff = Mean(state.payoffs());
  s.num_changes = num_changes;
  s.engine = engine_delta;
  return s;
}

}  // namespace

GameResult SolveIegt(const Instance& instance, const VdpsCatalog& catalog,
                     const IegtConfig& config) {
  FTA_SPAN("game/iegt/solve");
  JointState state(instance, catalog);
  Rng rng(config.seed);
  if (config.warm_start != nullptr) {
    // See SolveFgt: the seed comes from the dispatcher's delta projection,
    // so invalidity is a programming error.
    FTA_CHECK_OK(SeedInit(state, *config.warm_start));
  } else {
    RandomSingletonInit(state, rng);
  }
  BestResponseEngine engine(state, IauParams(), config.engine);

  GameResult result;
  if (config.record_trace) {
    result.trace.push_back(Snapshot(state, 0, 0,
                                    engine.ledger().PayoffDifference(),
                                    BestResponseCounters()));
  }

  std::vector<int32_t> better;  // reused candidate buffer
  EarlyStopMonitor early(config.early_stop);
  for (int round = 1; round <= config.max_rounds; ++round) {
    FTA_SPAN("game/iegt/round");
    // Ū is computed once per iteration: all players compare their utility
    // with the average utility of the whole population (Section VI-C).
    const double avg = Mean(state.payoffs());
    const BestResponseCounters round_start = engine.counters();
    size_t changes = 0;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      // σ̇_km < 0 ⇔ the worker's payoff is below the population average
      // (null-strategy workers have σ = 0 but may still enter the game by
      // natural selection when any positive-payoff strategy is available —
      // σ̇ = 0 with payoff 0 is never better than evolving).
      const double payoff = state.payoff_of(w);
      const bool pressured = payoff < avg - kEps;
      if (!pressured) continue;
      engine.AvailableAbovePayoff(w, payoff, better);
      if (!better.empty()) {
        engine.Apply(w, better[rng.Index(better.size())]);
        ++changes;
      }
    }
    result.rounds = round;
    // Round-boundary contracts (see SolveFgt): bookkeeping, the
    // availability index, and the payoff ledger stay exact across
    // evolution moves.
    FTA_DCHECK_OK(state.ValidateInvariants());
    FTA_DCHECK_OK(engine.ValidateAvailabilityIndex());
    FTA_DCHECK_OK(engine.ValidateLedger());
    // One sort-free P_dif per round, shared by the trace snapshot and the
    // early-stop rule.
    const double p_dif = engine.ledger().PayoffDifference();
    if (config.record_trace) {
      result.trace.push_back(Snapshot(state, round, changes, p_dif,
                                      engine.counters() - round_start));
    }
    if (changes == 0) {
      // Improved evolutionary equilibrium: σ̇_k(t) = 0 or st^t == st^{t-1}.
      result.converged = true;
      break;
    }
    if (early.ShouldStop(p_dif)) {
      result.early_stopped = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  result.engine = engine.counters();
  PublishGameRun("game/iegt", result);
  return result;
}

}  // namespace fta
