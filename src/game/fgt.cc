#include "game/fgt.h"

#include <algorithm>
#include <vector>

#include "game/best_response.h"
#include "game/init.h"
#include "game/potential.h"
#include "game/solver_metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {
namespace {

IterationStats Snapshot(const JointState& state, int iteration,
                        size_t num_changes, double alpha, double p_dif,
                        const BestResponseCounters& engine_delta) {
  // `p_dif` is the round's payoff difference, served sort-free by the
  // engine's payoff ledger and computed exactly once per round — the trace
  // row, the potential, and the early-stop rule all share it (it used to be
  // recomputed per consumer, each time with a fresh sort).
  IterationStats s;
  s.iteration = iteration;
  s.payoff_difference = p_dif;
  s.average_payoff = Mean(state.payoffs());
  s.potential = ExactPotential(state.payoffs(), alpha, p_dif);
  s.num_changes = num_changes;
  s.engine = engine_delta;
  return s;
}

}  // namespace

int32_t BestResponse(const JointState& state, size_t w,
                     const IauParams& params) {
  // One-shot scan: serial, no cache (building it would cost exactly one
  // full scan anyway). Evaluate never mutates the state.
  BestResponseConfig config;
  config.num_threads = 1;
  config.use_incremental_index = false;
  BestResponseEngine engine(const_cast<JointState&>(state), params, config);
  return engine.BestResponse(w);
}

bool IsPureNashEquilibrium(const JointState& state, const IauParams& params) {
  BestResponseConfig config;
  config.num_threads = 1;
  config.use_incremental_index = false;
  BestResponseEngine engine(const_cast<JointState&>(state), params, config);
  return engine.IsNash();
}

GameResult SolveFgt(const Instance& instance, const VdpsCatalog& catalog,
                    const FgtConfig& config) {
  FTA_SPAN("game/fgt/solve");
  JointState state(instance, catalog);
  Rng rng(config.seed);
  if (config.warm_start != nullptr) {
    // The dispatcher projects the previous equilibrium through the catalog
    // delta, so an invalid seed is a programming error, not bad input.
    FTA_CHECK_OK(SeedInit(state, *config.warm_start));
  } else {
    RandomSingletonInit(state, rng);
  }
  BestResponseEngine engine(state, config.iau, config.engine);

  GameResult result;
  if (config.record_trace) {
    result.trace.push_back(Snapshot(state, 0, 0, config.iau.alpha,
                                    engine.ledger().PayoffDifference(),
                                    BestResponseCounters()));
  }

  // Sequential asynchronous best responses (lines 18-24): one worker moves
  // at a time; a full round with zero moves is the Nash equilibrium
  // condition W.st^t == W.st^{t-1}.
  EarlyStopMonitor early(config.early_stop);
  std::vector<size_t> order(instance.num_workers());
  for (size_t w = 0; w < order.size(); ++w) order[w] = w;
  for (int round = 1; round <= config.max_rounds; ++round) {
    FTA_SPAN("game/fgt/round");
    switch (config.order) {
      case UpdateOrder::kSequential:
        break;  // keep worker-id order
      case UpdateOrder::kRandomPermutation:
        rng.Shuffle(order);
        break;
      case UpdateOrder::kLowestPayoffFirst:
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return state.payoff_of(a) < state.payoff_of(b);
                         });
        break;
    }
    const BestResponseCounters round_start = engine.counters();
    size_t changes = 0;
    for (size_t w : order) {
      if (engine.Step(w)) ++changes;
    }
    result.rounds = round;
    // Round-boundary contracts: state bookkeeping, the incremental
    // availability index, and the payoff ledger must be exact after every
    // full round of moves.
    FTA_DCHECK_OK(state.ValidateInvariants());
    FTA_DCHECK_OK(engine.ValidateAvailabilityIndex());
    FTA_DCHECK_OK(engine.ValidateLedger());
    // One sort-free P_dif per round, shared by the trace snapshot and the
    // early-stop rule (each used to pay its own copy-and-sort).
    const double p_dif = engine.ledger().PayoffDifference();
    if (config.record_trace) {
      result.trace.push_back(Snapshot(state, round, changes, config.iau.alpha,
                                      p_dif, engine.counters() - round_start));
    }
    if (changes == 0) {
      result.converged = true;
      break;
    }
    if (early.ShouldStop(p_dif)) {
      result.early_stopped = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  result.engine = engine.counters();
  PublishGameRun("game/fgt", result);
  return result;
}

}  // namespace fta
