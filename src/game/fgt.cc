#include "game/fgt.h"

#include <algorithm>
#include <vector>

#include "game/init.h"
#include "game/potential.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {
namespace {

/// Payoffs of everyone except w, for the responder's IAU evaluation.
OthersView MakeOthersView(const JointState& state, size_t w) {
  std::vector<double> others;
  others.reserve(state.payoffs().size() - 1);
  for (size_t j = 0; j < state.payoffs().size(); ++j) {
    if (j != w) others.push_back(state.payoffs()[j]);
  }
  return OthersView(std::move(others));
}

IterationStats Snapshot(const JointState& state, int iteration,
                        size_t num_changes, double alpha) {
  IterationStats s;
  s.iteration = iteration;
  s.payoff_difference = MeanAbsolutePairwiseDifference(state.payoffs());
  s.average_payoff = Mean(state.payoffs());
  s.potential = ExactPotential(state.payoffs(), alpha);
  s.num_changes = num_changes;
  return s;
}

}  // namespace

int32_t BestResponse(const JointState& state, size_t w,
                     const IauParams& params) {
  const OthersView others = MakeOthersView(state, w);
  // The incumbent strategy is the default; any challenger (including the
  // null strategy) must improve utility *strictly* to displace it. This
  // tie-break prevents cycling between equal-utility strategies.
  const int32_t current = state.strategy_of(w);
  int32_t best_idx = current;
  double best_u = others.Iau(state.payoff_of(w), params);
  if (current != kNullStrategy) {
    const double null_u = others.Iau(0.0, params);
    if (DefinitelyGreater(null_u, best_u)) {
      best_idx = kNullStrategy;
      best_u = null_u;
    }
  }
  const auto& strategies = state.catalog().strategies(w);
  for (size_t i = 0; i < strategies.size(); ++i) {
    const int32_t idx = static_cast<int32_t>(i);
    if (idx == current) continue;  // already evaluated (as incumbent)
    if (!state.IsAvailable(w, idx)) continue;
    const double u = others.Iau(strategies[i].payoff, params);
    if (DefinitelyGreater(u, best_u)) {
      best_idx = idx;
      best_u = u;
    }
  }
  return best_idx;
}

bool IsPureNashEquilibrium(const JointState& state, const IauParams& params) {
  for (size_t w = 0; w < state.payoffs().size(); ++w) {
    if (BestResponse(state, w, params) != state.strategy_of(w)) return false;
  }
  return true;
}

GameResult SolveFgt(const Instance& instance, const VdpsCatalog& catalog,
                    const FgtConfig& config) {
  JointState state(instance, catalog);
  Rng rng(config.seed);
  RandomSingletonInit(state, rng);

  GameResult result;
  if (config.record_trace) {
    result.trace.push_back(Snapshot(state, 0, 0, config.iau.alpha));
  }

  // Sequential asynchronous best responses (lines 18-24): one worker moves
  // at a time; a full round with zero moves is the Nash equilibrium
  // condition W.st^t == W.st^{t-1}.
  EarlyStopMonitor early(config.early_stop);
  std::vector<size_t> order(instance.num_workers());
  for (size_t w = 0; w < order.size(); ++w) order[w] = w;
  for (int round = 1; round <= config.max_rounds; ++round) {
    switch (config.order) {
      case UpdateOrder::kSequential:
        break;  // keep worker-id order
      case UpdateOrder::kRandomPermutation:
        rng.Shuffle(order);
        break;
      case UpdateOrder::kLowestPayoffFirst:
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return state.payoff_of(a) < state.payoff_of(b);
                         });
        break;
    }
    size_t changes = 0;
    for (size_t w : order) {
      const int32_t br = BestResponse(state, w, config.iau);
      if (br != state.strategy_of(w)) {
        state.Apply(w, br);
        ++changes;
      }
    }
    result.rounds = round;
    if (config.record_trace) {
      result.trace.push_back(
          Snapshot(state, round, changes, config.iau.alpha));
    }
    if (changes == 0) {
      result.converged = true;
      break;
    }
    if (early.ShouldStop(MeanAbsolutePairwiseDifference(state.payoffs()))) {
      result.early_stopped = true;
      break;
    }
  }
  result.assignment = state.ToAssignment();
  return result;
}

}  // namespace fta
