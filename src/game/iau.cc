#include "game/iau.h"

#include <algorithm>

#include "util/simd.h"

namespace fta {

double Iau(double own, const std::vector<double>& others,
           const IauParams& params) {
  if (others.empty()) return own;
  double mp = 0.0;
  double lp = 0.0;
  for (double p : others) {
    if (p > own) mp += p - own;
    if (p < own) lp += own - p;
  }
  const double m = static_cast<double>(others.size());
  return own - (params.alpha / m) * mp - (params.beta / m) * lp;
}

double SortedMp(const double* values, size_t n, const double* prefix,
                double own) {
  // Elements strictly above `own` (ties contribute 0 either way).
  const double* it = std::lower_bound(values, values + n, own);
  const size_t k = static_cast<size_t>(it - values);
  const size_t above = n - k;
  return (prefix[n] - prefix[k]) - static_cast<double>(above) * own;
}

double SortedLp(const double* values, size_t n, const double* prefix,
                double own) {
  const double* it = std::lower_bound(values, values + n, own);
  const size_t k = static_cast<size_t>(it - values);
  return static_cast<double>(k) * own - prefix[k];
}

double SortedIau(const double* values, size_t n, const double* prefix,
                 double own, const IauParams& params) {
  if (n == 0) return own;
  const double m = static_cast<double>(n);
  return own - (params.alpha / m) * SortedMp(values, n, prefix, own) -
         (params.beta / m) * SortedLp(values, n, prefix, own);
}

OthersView::OthersView(std::vector<double> others)
    : sorted_(std::move(others)) {
  std::sort(sorted_.begin(), sorted_.end());
  prefix_.resize(sorted_.size() + 1, 0.0);
  // Canonical blocked accumulation (util/simd.h) — the same order
  // PayoffLedger::Exclude uses, so ledger and rebuild views stay
  // bit-identical, and the same order on scalar and AVX2 dispatch.
  simd::BlockedPrefixSum(sorted_.data(), sorted_.size(), prefix_.data());
}

double OthersView::Mp(double own) const {
  return SortedMp(sorted_.data(), sorted_.size(), prefix_.data(), own);
}

double OthersView::Lp(double own) const {
  return SortedLp(sorted_.data(), sorted_.size(), prefix_.data(), own);
}

double OthersView::Iau(double own, const IauParams& params) const {
  return SortedIau(sorted_.data(), sorted_.size(), prefix_.data(), own,
                   params);
}

}  // namespace fta
