#include "game/iau.h"

#include <algorithm>

namespace fta {

double Iau(double own, const std::vector<double>& others,
           const IauParams& params) {
  if (others.empty()) return own;
  double mp = 0.0;
  double lp = 0.0;
  for (double p : others) {
    if (p > own) mp += p - own;
    if (p < own) lp += own - p;
  }
  const double m = static_cast<double>(others.size());
  return own - (params.alpha / m) * mp - (params.beta / m) * lp;
}

OthersView::OthersView(std::vector<double> others)
    : sorted_(std::move(others)) {
  std::sort(sorted_.begin(), sorted_.end());
  prefix_.resize(sorted_.size() + 1, 0.0);
  for (size_t i = 0; i < sorted_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + sorted_[i];
  }
}

double OthersView::Mp(double own) const {
  // Elements strictly above `own` (ties contribute 0 either way).
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), own);
  const size_t k = static_cast<size_t>(it - sorted_.begin());
  const size_t above = sorted_.size() - k;
  return (prefix_.back() - prefix_[k]) - static_cast<double>(above) * own;
}

double OthersView::Lp(double own) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), own);
  const size_t k = static_cast<size_t>(it - sorted_.begin());
  return static_cast<double>(k) * own - prefix_[k];
}

double OthersView::Iau(double own, const IauParams& params) const {
  if (sorted_.empty()) return own;
  const double m = static_cast<double>(sorted_.size());
  return own - (params.alpha / m) * Mp(own) - (params.beta / m) * Lp(own);
}

}  // namespace fta
