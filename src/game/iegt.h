#ifndef FTA_GAME_IEGT_H_
#define FTA_GAME_IEGT_H_

#include <vector>

#include "game/best_response.h"
#include "game/joint_state.h"
#include "game/trace.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Configuration of the Improved Evolutionary Game-Theoretic solver
/// (Algorithm 3).
struct IegtConfig {
  /// Hard cap on evolution iterations.
  int max_rounds = 500;
  /// Seed for the initial assignment and the random strategy mutations.
  uint64_t seed = 42;
  /// Record per-iteration statistics (Figure 12).
  bool record_trace = false;
  /// Optional early termination (patience = 0 disables; see EarlyStopRule).
  EarlyStopRule early_stop;
  /// Shared engine tuning (the incremental availability index accelerates
  /// the evolution scan; the candidate set is unchanged by it).
  BestResponseConfig engine;
  /// Warm-start joint strategy (see FgtConfig::warm_start): replaces the
  /// random singleton initialization when set. Not owned; must outlive the
  /// solve call.
  const std::vector<int32_t>* warm_start = nullptr;
};

/// Per-worker replicator dynamics σ̇_km(t) (Equation 11) of the current
/// joint strategy: σ̇ for worker i is σ_km (U_i − Ū) with σ_km the
/// population share of the worker's strategy (Equations 12-13, = 1/|G_k|
/// for an in-use strategy since strategies are distinct per worker) and Ū
/// the population's average utility (Equation 14). Workers on the null
/// strategy have utility 0. Negative σ̇ marks workers pressured to evolve.
std::vector<double> ReplicatorDynamics(const JointState& state);

/// Improved Evolutionary Game-Theoretic approach (Algorithm 3): random
/// singleton initialization, then repeated evolution — every worker whose
/// replicator dynamics is negative (payoff below the population average)
/// switches to a uniformly random available VDPS with a strictly higher
/// payoff, when one exists. Terminates at the improved evolutionary
/// equilibrium: σ̇ = 0 (all payoffs equal) or a fixed joint strategy.
GameResult SolveIegt(const Instance& instance, const VdpsCatalog& catalog,
                     const IegtConfig& config = IegtConfig());

}  // namespace fta

#endif  // FTA_GAME_IEGT_H_
