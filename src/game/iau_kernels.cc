#include "game/iau_kernels.h"

#include <algorithm>

#include "util/simd.h"

namespace fta {

namespace iau_internal {

void CountLessBatchScalar(const double* values, size_t n, const double* owns,
                          size_t count, uint32_t* out_counts) {
  for (size_t j = 0; j < count; ++j) {
    const double* it = std::lower_bound(values, values + n, owns[j]);
    out_counts[j] = static_cast<uint32_t>(it - values);
  }
}

void CountLessBatchSortedDescScalar(const double* values, size_t n,
                                    const double* owns, size_t count,
                                    uint32_t* out_counts) {
  // Owns descending => walking them in reverse is ascending, and each
  // own's rank continues where the previous one stopped: the advance halts
  // at the first !(value < own), which is exactly the lower_bound index.
  size_t p = 0;
  for (size_t j = count; j-- > 0;) {
    const double own = owns[j];
    while (p < n && values[p] < own) ++p;
    out_counts[j] = static_cast<uint32_t>(p);
  }
}

}  // namespace iau_internal

void CountLessBatch(const double* values, size_t n, const double* owns,
                    size_t count, uint32_t* out_counts) {
#ifdef FTA_SIMD_AVX2
  if (simd::ActiveSimdMode() == simd::SimdMode::kAvx2) {
    iau_internal::CountLessBatchAvx2(values, n, owns, count, out_counts);
    return;
  }
#endif
  iau_internal::CountLessBatchScalar(values, n, owns, count, out_counts);
}

void CountLessBatchSortedDesc(const double* values, size_t n,
                              const double* owns, size_t count,
                              uint32_t* out_counts) {
#ifdef FTA_SIMD_AVX2
  if (simd::ActiveSimdMode() == simd::SimdMode::kAvx2) {
    iau_internal::CountLessBatchSortedDescAvx2(values, n, owns, count,
                                               out_counts);
    return;
  }
#endif
  iau_internal::CountLessBatchSortedDescScalar(values, n, owns, count,
                                               out_counts);
}

void SortedIauBatch(const double* values, size_t n, const double* prefix,
                    const IauParams& params, const double* owns, size_t count,
                    double* out) {
  if (n == 0) {
    // SortedIau(own) with no others is `own` exactly.
    std::copy(owns, owns + count, out);
    return;
  }
  // The engine's batches arrive in the catalog's payoff-descending order,
  // which unlocks the O(n + count) merge ranks; a NaN anywhere fails the
  // `<=` chain and falls back to the generic per-own kernel (either path
  // produces the identical exact counts — this is purely a cost choice).
  const bool descending = iau_internal::IsNonIncreasing(owns, count);
  const double m = static_cast<double>(n);
  const double alpha_m = params.alpha / m;
  const double beta_m = params.beta / m;
  const double total = prefix[n];
  // Fixed-size rank scratch keeps the batch allocation-free at any count.
  constexpr size_t kChunk = 128;
  uint32_t counts[kChunk];
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t c = std::min(kChunk, count - base);
    if (descending) {
      CountLessBatchSortedDesc(values, n, owns + base, c, counts);
    } else {
      CountLessBatch(values, n, owns + base, c, counts);
    }
    for (size_t j = 0; j < c; ++j) {
      // The exact expression tree of SortedMp/SortedLp/SortedIau
      // (game/iau.cc), per lane — same ranks, same arithmetic, same bits.
      const double own = owns[base + j];
      const size_t k = counts[j];
      const double above = static_cast<double>(n - k);
      const double mp = (total - prefix[k]) - above * own;
      const double lp = static_cast<double>(k) * own - prefix[k];
      out[base + j] = own - alpha_m * mp - beta_m * lp;
    }
  }
}

size_t SortedIauBatchArgmax(const double* values, size_t n,
                            const double* prefix, const IauParams& params,
                            const double* owns, size_t count,
                            double* best_utility) {
  if (n == 0) {
    // Each utility is its own payoff exactly; earliest strict maximum.
    size_t best = 0;
    for (size_t j = 1; j < count; ++j) {
      if (owns[j] > owns[best]) best = j;
    }
    *best_utility = owns[best];
    return best;
  }
  const bool descending = iau_internal::IsNonIncreasing(owns, count);
  const double m = static_cast<double>(n);
  const double alpha_m = params.alpha / m;
  const double beta_m = params.beta / m;
  const double total = prefix[n];
#ifdef FTA_SIMD_AVX2
  const bool avx2 = simd::ActiveSimdMode() == simd::SimdMode::kAvx2;
#endif
  constexpr size_t kChunk = 128;
  uint32_t counts[kChunk];
  double best_u = 0.0;
  size_t best_pos = 0;
  bool have = false;
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t c = std::min(kChunk, count - base);
    if (descending) {
      CountLessBatchSortedDesc(values, n, owns + base, c, counts);
    } else {
      CountLessBatch(values, n, owns + base, c, counts);
    }
    // Chunk-local earliest max, then a strictly-greater combine across
    // chunks: equal utilities keep the earlier chunk, so the result is the
    // global earliest maximum — the sequential fold's winner.
    double chunk_u = 0.0;
    size_t chunk_pos = 0;
#ifdef FTA_SIMD_AVX2
    if (avx2) {
      chunk_pos = iau_internal::SortedIauChunkArgmaxAvx2(
          prefix, total, m, alpha_m, beta_m, owns + base, counts, c,
          &chunk_u);
    } else
#endif
    {
      for (size_t j = 0; j < c; ++j) {
        // The exact per-lane tree of SortedIauBatch above.
        const double own = owns[base + j];
        const size_t k = counts[j];
        const double above = static_cast<double>(n - k);
        const double mp = (total - prefix[k]) - above * own;
        const double lp = static_cast<double>(k) * own - prefix[k];
        const double u = own - alpha_m * mp - beta_m * lp;
        if (j == 0 || u > chunk_u) {
          chunk_u = u;
          chunk_pos = j;
        }
      }
    }
    if (!have || chunk_u > best_u) {
      best_u = chunk_u;
      best_pos = base + chunk_pos;
      have = true;
    }
  }
  *best_utility = best_u;
  return best_pos;
}

}  // namespace fta
