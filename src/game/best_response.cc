#include "game/best_response.h"

#include <algorithm>

#include "game/iau_kernels.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "vdps/catalog.h"

namespace fta {

BestResponseEngine::BestResponseEngine(JointState& state,
                                       const IauParams& params,
                                       const BestResponseConfig& config)
    : state_(&state), params_(params), config_(config) {
  if (config_.pool != nullptr) {
    // Injected pool: reuse the caller's workers. A 1-thread pool keeps
    // the scan serial, matching the num_threads <= 1 contract.
    if (config_.pool->num_threads() > 1) pool_ = config_.pool;
  } else if (config_.num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    pool_ = owned_pool_.get();
  }
  if (config_.use_incremental_index) {
    const VdpsCatalog& catalog = state_->catalog();
    avail_.resize(catalog.num_workers());
    for (size_t w = 0; w < catalog.num_workers(); ++w) {
      avail_[w].assign(catalog.strategies(w).size(), kUnknown);
    }
  }
  // The ledger is maintained unconditionally (Apply keeps it coherent
  // either way); use_payoff_ledger only selects which view Evaluate reads.
  // Maintenance costs O(moved elements) per Apply — negligible next to the
  // candidate scan — and keeps the solvers' sort-free round metrics
  // (P_dif, Gini, Φ) available even in the A/B rebuild configuration.
  ledger_.Reset(state_->payoffs());
  // Batch scratch, sized once so the candidate scan never allocates: one
  // slot per potential shard (the Evaluate fan-out uses at most
  // num_threads * 4 shards), each able to hold a full worker's catalog.
  const size_t max_strategies = state_->catalog().MaxStrategiesPerWorker();
  const size_t shard_slots =
      pool_ != nullptr ? pool_->num_threads() * 4 : size_t{1};
  scratch_.resize(std::max<size_t>(size_t{1}, shard_slots));
  for (KernelScratch& s : scratch_) {
    s.owns.assign(max_strategies, 0.0);
    s.indices.assign(max_strategies, 0);
  }
}

BestResponseEngine::~BestResponseEngine() = default;

bool BestResponseEngine::Available(size_t w, int32_t idx,
                                   BestResponseCounters& counters) {
  if (idx == kNullStrategy) return true;
  if (avail_.empty()) {
    ++counters.strategies_scanned;
    return state_->IsAvailable(w, idx);
  }
  uint8_t& slot = avail_[w][static_cast<size_t>(idx)];
  if (slot != kUnknown) {
    ++counters.cache_skips;
    return slot == kAvailable;
  }
  ++counters.strategies_scanned;
  const bool ok = state_->IsAvailable(w, idx);
  slot = ok ? kAvailable : kBlocked;
  return ok;
}

void BestResponseEngine::Mark(uint32_t dp, size_t mover, uint8_t value) {
  for (const StrategyRef& ref : state_->catalog().strategies_touching(dp)) {
    // The mover's own entries are exempt from its own ownership (a worker
    // may always reuse its own points), so none of them change.
    if (ref.worker == mover) continue;
    avail_[ref.worker][static_cast<size_t>(ref.strategy)] = value;
  }
}

void BestResponseEngine::Apply(size_t w, int32_t idx) {
  const int32_t old = state_->strategy_of(w);
  if (old == idx) return;
  if (!avail_.empty()) {
    // Ownership changes exactly on (old \ new) — released — and
    // (new \ old) — claimed; points in both stay owned by w. A claim makes
    // every other worker's strategy on that point exactly kBlocked (a
    // cache *write*, not an invalidation); a release makes previously
    // blocked entries unknown (other points may still block them).
    const VdpsCatalog& catalog = state_->catalog();
    static const std::vector<uint32_t> kNoDps;
    auto dps_of = [&](int32_t s) -> const std::vector<uint32_t>& {
      if (s == kNullStrategy) return kNoDps;
      return catalog
          .entry(catalog.strategies(w)[static_cast<size_t>(s)].entry_id)
          .dps;
    };
    const std::vector<uint32_t>& old_dps = dps_of(old);
    const std::vector<uint32_t>& new_dps = dps_of(idx);
    // Both sets are sorted ascending; two-pointer set difference.
    size_t a = 0;
    size_t b = 0;
    while (a < old_dps.size() || b < new_dps.size()) {
      if (b == new_dps.size() ||
          (a < old_dps.size() && old_dps[a] < new_dps[b])) {
        Mark(old_dps[a++], w, kUnknown);  // released
      } else if (a == old_dps.size() || new_dps[b] < old_dps[a]) {
        Mark(new_dps[b++], w, kBlocked);  // claimed
      } else {
        ++a;  // kept: still owned by w, no cache effect
        ++b;
      }
    }
  }
  state_->Apply(w, idx);
  ledger_.Update(w, state_->payoff_of(w));
}

// FTA_HOT_BEGIN(best-response-scan)
// Steady-state region (fta_lint hot-path-allocation): Evaluate through
// AvailableAbovePayoff run once per candidate move, every round. Scratch
// is sized in the constructor; nothing here may allocate per call.

BestResponseOutcome BestResponseEngine::Evaluate(size_t w) {
  FTA_SPAN("game/best_response");
  if (config_.use_payoff_ledger) {
    // Sort-free, allocation-free path: the ledger copies its sorted array
    // minus w's slot into reusable scratch and recomputes prefix sums —
    // O(|W|) with zero heap traffic, versus the rebuild path's
    // O(|W| log |W|) sort plus two allocations (DESIGN.md §9).
    return EvaluateWithView(w, ledger_.Exclude(w));
  }
  // A/B rebuild path (bench_micro --bench=game, identity tests): gather
  // the other workers' payoffs and sort them from scratch.
  const std::vector<double>& payoffs = state_->payoffs();
  std::vector<double> others;
  others.reserve(payoffs.empty() ? 0 : payoffs.size() - 1);
  for (size_t j = 0; j < payoffs.size(); ++j) {
    if (j != w) others.push_back(payoffs[j]);
  }
  return EvaluateWithView(w, OthersView(std::move(others)));
}

template <typename View>
BestResponseOutcome BestResponseEngine::EvaluateWithView(size_t w,
                                                         const View& view) {
  const int32_t current = state_->strategy_of(w);
  const double incumbent_u = view.Iau(state_->payoff_of(w), params_);

  // The null strategy (always available) seeds the challenger reduce; its
  // index kNullStrategy = -1 sorts below every catalog index, preserving
  // the "null first" candidate order of Equation 10.
  Candidate challenger;
  if (current != kNullStrategy) {
    challenger = Candidate{view.Iau(0.0, params_), kNullStrategy, true};
  }

  // Candidate payoffs stream from the catalog's SoA array (contiguous
  // doubles, no striding through WorkerStrategy structs), and each shard
  // issues ONE fused SortedIauBatchArgmax over its gathered availability
  // survivors instead of a view.Iau per candidate. Bit-identity: the
  // kernel's per-lane expression tree is exactly SortedIau's
  // (game/iau_kernels.h) and its earliest-max reduce is exactly the
  // Better() fold over ascending indices, so Better(cand, winner) equals
  // the per-candidate fold the old loop produced — the max is a total
  // order, so folding a batch's own maximum first cannot change it.
  const size_t n = state_->catalog().strategies(w).size();
  const double* payoffs = state_->catalog().strategy_payoffs(w).data();
  const bool avx2 = simd::ActiveSimdMode() == simd::SimdMode::kAvx2;
  auto scan = [&](size_t lo, size_t hi, KernelScratch& scratch,
                  Candidate& cand, BestResponseCounters& counters) {
    size_t cnt = 0;
    for (size_t i = lo; i < hi; ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (idx == current) continue;  // evaluated as the incumbent
      if (!Available(w, idx, counters)) continue;
      scratch.owns[cnt] = payoffs[i];
      scratch.indices[cnt] = idx;
      ++cnt;
    }
    if (cnt == 0) return;
    double best_u = 0.0;
    const size_t pos = SortedIauBatchArgmax(
        view.sorted_values(), view.size(), view.prefix_sums(), params_,
        scratch.owns.data(), cnt, &best_u);
    ++counters.simd_batches;
    counters.simd_lanes += cnt;
    if (avx2) ++counters.simd_avx2_batches;
    cand = Better(cand, Candidate{best_u, scratch.indices[pos], true});
  };

  if (pool_ != nullptr && n >= config_.min_parallel_candidates) {
    // Sharded fan-out with a deterministic reduce: each shard folds its own
    // range, then the shard winners fold in shard order. Better() is a max
    // under the total order (utility desc, index asc), so the result is
    // independent of the shard partition and of execution interleaving.
    const size_t shards = std::min(n, pool_->num_threads() * 4);
    const size_t chunk = (n + shards - 1) / shards;
    std::vector<Candidate> winners(shards);
    std::vector<BestResponseCounters> shard_counters(shards);
    FTA_SPAN("game/br_batch");
    pool_->RunBatch(shards, [&](size_t s) {
      FTA_SPAN("game/br_shard");
      const size_t lo = s * chunk;
      const size_t hi = std::min(n, lo + chunk);
      if (lo < hi) scan(lo, hi, scratch_[s], winners[s], shard_counters[s]);
    });
    ++counters_.parallel_batches;
    for (size_t s = 0; s < shards; ++s) {
      challenger = Better(challenger, winners[s]);
      counters_ += shard_counters[s];
    }
  } else {
    scan(0, n, scratch_[0], challenger, counters_);
  }

  BestResponseOutcome out;
  out.incumbent_utility = incumbent_u;
  out.best_utility = challenger.valid
                         ? std::max(incumbent_u, challenger.utility)
                         : incumbent_u;
  if (challenger.valid && DefinitelyGreater(challenger.utility, incumbent_u)) {
    out.strategy = challenger.index;
    out.utility = challenger.utility;
  } else {
    out.strategy = current;
    out.utility = incumbent_u;
  }
  return out;
}

bool BestResponseEngine::Step(size_t w) {
  const BestResponseOutcome outcome = Evaluate(w);
  if (outcome.strategy == state_->strategy_of(w)) return false;
  Apply(w, outcome.strategy);
  return true;
}

bool BestResponseEngine::IsAvailableCached(size_t w, int32_t idx) {
  return Available(w, idx, counters_);
}

void BestResponseEngine::AvailableAbovePayoff(size_t w,
                                              double payoff_threshold,
                                              std::vector<int32_t>& out) {
  out.clear();
  const int32_t current = state_->strategy_of(w);
  const std::vector<double>& payoffs = state_->catalog().strategy_payoffs(w);
  for (size_t i = 0; i < payoffs.size(); ++i) {
    const int32_t idx = static_cast<int32_t>(i);
    if (idx == current) continue;
    if (payoffs[i] <= payoff_threshold + kEps) break;  // sorted desc
    // Caller-owned buffer, reused across calls (out.clear() above keeps
    // capacity): growth amortizes to zero in steady state.
    if (Available(w, idx, counters_)) out.push_back(idx);  // NOLINT(fta-alloc)
  }
}

// FTA_HOT_END(best-response-scan)

Status BestResponseEngine::ValidateAvailabilityIndex() const {
  for (size_t w = 0; w < avail_.size(); ++w) {
    for (size_t i = 0; i < avail_[w].size(); ++i) {
      const uint8_t slot = avail_[w][i];
      if (slot == kUnknown) continue;
      const bool actual = state_->IsAvailable(w, static_cast<int32_t>(i));
      if (actual != (slot == kAvailable)) {
        return Status::Internal(StrFormat(
            "availability cache stale for worker %zu strategy %zu: cached "
            "%s, actual %s",
            w, i, slot == kAvailable ? "available" : "blocked",
            actual ? "available" : "blocked"));
      }
    }
  }
  return Status::Ok();
}

Status BestResponseEngine::ValidateLedger() const {
  return ledger_.Validate(state_->payoffs());
}

bool BestResponseEngine::IsNash() {
  for (size_t w = 0; w < state_->payoffs().size(); ++w) {
    if (Evaluate(w).strategy != state_->strategy_of(w)) return false;
  }
  return true;
}

}  // namespace fta
