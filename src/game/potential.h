#ifndef FTA_GAME_POTENTIAL_H_
#define FTA_GAME_POTENTIAL_H_

#include <vector>

#include "game/iau.h"

namespace fta {

/// Exact potential of the FTA game for symmetric inequity aversion
/// (alpha == beta == a), a refinement of the paper's Lemma 2:
///
///   Φ(st) = Σ_k P_k − (a / (|W|−1)) · Σ_{k<l} |P_k − P_l|
///
/// A unilateral payoff change of worker i changes Φ by exactly
/// ΔU_i = ΔP_i − (a/(|W|−1)) Σ_{j≠i} Δ|P_i − P_j|, so best responses
/// monotonically increase Φ and a pure Nash equilibrium exists.
///
/// Equivalently Φ = |W|·avgPayoff − (a·|W|/2)·P_dif: the potential rewards
/// average payoff and penalizes unfairness — precisely the FTA objectives.
///
/// The paper's own potential Σ_i IAU_i (Equation 9) is exact only under the
/// approximation that other workers' IAU terms are unaffected; this Φ is
/// exact without that approximation. For alpha != beta no exact potential
/// is known; FGT then still runs but convergence is enforced by a round cap.
double ExactPotential(const std::vector<double>& payoffs, double alpha);

/// Same Φ computed from an already-known P_dif, which must equal
/// MeanAbsolutePairwiseDifference(payoffs) — the callers that already
/// paid for the per-round P_dif (FGT snapshots, the payoff ledger) reuse
/// it here instead of re-sorting. Bit-identical to the two-argument
/// overload by construction: both run the same expressions on the same
/// values.
double ExactPotential(const std::vector<double>& payoffs, double alpha,
                      double payoff_difference);

/// The paper's potential function Φ_paper(st) = Σ_i IAU(w_i) (Lemma 2),
/// kept for comparison and for the convergence plots.
double PaperPotential(const std::vector<double>& payoffs,
                      const IauParams& params);

}  // namespace fta

#endif  // FTA_GAME_POTENTIAL_H_
