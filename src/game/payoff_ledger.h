#ifndef FTA_GAME_PAYOFF_LEDGER_H_
#define FTA_GAME_PAYOFF_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "game/iau.h"
#include "util/status.h"

namespace fta {

/// Work savings of the sorted payoff ledger versus the legacy rebuild path
/// (one heap-allocated, freshly sorted OthersView per best-response call).
/// Purely observational: two runs that differ only in these counters
/// produced identical assignments.
struct LedgerCounters {
  /// Exclude-one views and sorted metric evaluations served without a
  /// sort (each would have been an O(n log n) std::sort on the rebuild
  /// path).
  uint64_t sorts_eliminated = 0;
  /// Bytes the rebuild path would have heap-allocated for the views the
  /// ledger served from its reusable scratch instead.
  uint64_t bytes_not_allocated = 0;
  /// Elements shifted by Update() memmoves to keep the array sorted.
  uint64_t memmove_elements = 0;
  /// Exclude-one views served from the reusable scratch buffer, which is
  /// sized once at Reset() — every one of these was allocation-free (the
  /// steady-state zero-allocation regime).
  uint64_t scratch_reuses = 0;

  LedgerCounters& operator+=(const LedgerCounters& o) {
    sorts_eliminated += o.sorts_eliminated;
    bytes_not_allocated += o.bytes_not_allocated;
    memmove_elements += o.memmove_elements;
    scratch_reuses += o.scratch_reuses;
    return *this;
  }
  friend LedgerCounters operator-(LedgerCounters a, const LedgerCounters& b) {
    a.sorts_eliminated -= b.sorts_eliminated;
    a.bytes_not_allocated -= b.bytes_not_allocated;
    a.memmove_elements -= b.memmove_elements;
    a.scratch_reuses -= b.scratch_reuses;
    return a;
  }
};

/// Read-only exclude-one view over the ledger: the other workers' payoffs
/// in ascending order plus their prefix sums, evaluated through exactly the
/// same kernels as OthersView (game/iau.h), so Mp/Lp/IAU results are
/// bit-identical to a freshly built view. Valid until the next Exclude()
/// or Update() on the owning ledger.
class LedgerView {
 public:
  // FTA_HOT_BEGIN(ledger-view)
  // These accessors sit inside the per-candidate inner loop; fta_lint's
  // hot-path-allocation rule keeps them allocation-free.
  size_t size() const { return values_.size(); }
  double Mp(double own) const {
    return SortedMp(values_.data(), values_.size(), prefix_.data(), own);
  }
  double Lp(double own) const {
    return SortedLp(values_.data(), values_.size(), prefix_.data(), own);
  }
  double Iau(double own, const IauParams& params) const {
    return SortedIau(values_.data(), values_.size(), prefix_.data(), own,
                     params);
  }

  /// Raw ascending values / prefix sums (size() and size() + 1 elements) —
  /// the inputs SortedIauBatch streams for the engine's batched candidate
  /// scan.
  const double* sorted_values() const { return values_.data(); }
  const double* prefix_sums() const { return prefix_.data(); }
  // FTA_HOT_END(ledger-view)

 private:
  friend class PayoffLedger;
  std::vector<double> values_;  // ascending, |W|-1 once sized
  std::vector<double> prefix_;  // prefix_[k] = sum of first k values
};

/// Incrementally maintained sorted array of all |W| current payoffs plus
/// each worker's slot. Replaces the per-Evaluate rebuild (allocate an
/// `others` vector, sort it, allocate prefix sums — O(|W| log |W|) and two
/// allocations per best-response call) with:
///
///   Update(w, p)   O(shift) memmove, no sort, no allocation;
///   Exclude(w)     copy-minus-one-slot into reusable scratch + one
///                  left-to-right prefix pass, O(|W|), zero allocations
///                  after the first call.
///
/// Bit-identity: Exclude(w) materializes *the same ascending value
/// sequence* std::sort produces from the other workers' payoffs, and the
/// prefix sums follow the canonical blocked accumulation order over that
/// sequence exactly as OthersView does (util/simd.h — identical on scalar
/// and AVX2 dispatch), so every Mp/Lp/IAU result — and therefore every
/// chosen strategy — matches the rebuild path bit for bit
/// (tests/game_ledger_identity_test.cc pins this across seeds and thread
/// counts). The sorted array also serves the round metrics sort-free:
/// PayoffDifference() and the potential overload reuse the same
/// accumulation MeanAbsolutePairwiseDifference performs after its sort.
///
/// Not thread-safe; owned and serialized by one BestResponseEngine.
class PayoffLedger {
 public:
  PayoffLedger() = default;
  explicit PayoffLedger(const std::vector<double>& payoffs) {
    Reset(payoffs);
  }

  /// Rebuilds the ledger from scratch (O(n log n)); the only sort the
  /// ledger ever performs. Counters persist across resets.
  void Reset(const std::vector<double>& payoffs);

  /// Worker w's payoff changed to `payoff`: slides its slot to the new
  /// position with a memmove. O(distance moved); no sort, no allocation.
  void Update(size_t w, double payoff);

  size_t size() const { return sorted_.size(); }
  /// Current payoff of worker w as recorded in the ledger.
  double value_of(size_t w) const { return sorted_[pos_[w]]; }
  /// All payoffs, ascending.
  const std::vector<double>& sorted() const { return sorted_; }

  /// The exclude-w view (every other worker's payoff, ascending, with
  /// prefix sums) served from reusable scratch. Invalidated by the next
  /// Exclude() or Update().
  const LedgerView& Exclude(size_t w);

  /// P_dif (Equation 2) over the current payoffs, sort-free: exactly the
  /// accumulation MeanAbsolutePairwiseDifference runs after its sort.
  /// const: only the (mutable, observational) counters change.
  double PayoffDifference() const;
  /// Gini over the current payoffs, sort-free (GiniSorted semantics: the
  /// mean accumulates over the ascending sequence).
  double Gini() const;
  /// Exact potential Φ (game/potential.h) with the pairwise term served
  /// by the ledger. `payoffs` must be the same multiset in worker-index
  /// order (the total accumulates over it, exactly as the sorting
  /// overload does).
  double ExactPotential(const std::vector<double>& payoffs,
                        double alpha) const;

  const LedgerCounters& counters() const { return counters_; }

  /// Deep self-check against the authoritative payoff vector
  /// (FTA_VALIDATE contract, called at solver round boundaries): sorted_
  /// ascending, pos_/worker_at_ a consistent bijection, and every slot
  /// bit-identical to its worker's payoff.
  Status Validate(const std::vector<double>& payoffs) const;

 private:
  std::vector<double> sorted_;      // ascending payoffs
  std::vector<uint32_t> worker_at_;  // worker occupying each sorted slot
  std::vector<uint32_t> pos_;        // pos_[w]: slot of worker w
  LedgerView scratch_;
  /// mutable: the const metric getters account the sorts they eliminate.
  mutable LedgerCounters counters_;
};

}  // namespace fta

#endif  // FTA_GAME_PAYOFF_LEDGER_H_
