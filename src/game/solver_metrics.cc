#include "game/solver_metrics.h"

#include <string>

#include "obs/metrics.h"
#include "util/simd.h"

namespace fta {

void PublishGameRun(const char* solver, const GameResult& result) {
  auto& reg = obs::MetricsRegistry::Global();
  const std::string prefix(solver);
  // Per-solver registrations are looked up by name on every run (solvers
  // run at most a handful of times per process; the map lookup is not a
  // hot path, unlike the per-observation cell updates).
  reg.GetCounter(prefix + "/runs").Increment();
  reg.GetCounter(prefix + "/rounds")
      .Add(static_cast<uint64_t>(result.rounds));
  if (result.converged) reg.GetCounter(prefix + "/converged").Increment();
  if (result.early_stopped) {
    reg.GetCounter(prefix + "/early_stopped").Increment();
  }
  // Round count as a distribution: observations are exact small integers,
  // so the histogram is as deterministic as the solve itself.
  reg.GetHistogram(prefix + "/rounds_dist",
                   obs::ExponentialBounds(1.0, 2.0, 8))
      .Observe(static_cast<double>(result.rounds));
  // Engine work is shared across solvers on purpose: the Figure-12 benches
  // compare total scan/cache traffic regardless of which loop drove it.
  reg.GetCounter("game/engine/strategies_scanned")
      .Add(result.engine.strategies_scanned);
  reg.GetCounter("game/engine/cache_skips").Add(result.engine.cache_skips);
  reg.GetCounter("game/engine/parallel_batches")
      .Add(result.engine.parallel_batches);
  // Batched-kernel traffic (game/iau_kernels.h): how many SortedIauBatch
  // calls the candidate scans issued, how many candidate utilities they
  // produced, and which dispatch path served them — avx2_batches is 0 on a
  // scalar host or forced-scalar run, so dashboards can tell at a glance
  // which kernels produced a run's numbers.
  reg.GetCounter("game/simd/batches").Add(result.engine.simd_batches);
  reg.GetCounter("game/simd/lanes").Add(result.engine.simd_lanes);
  reg.GetCounter("game/simd/avx2_batches")
      .Add(result.engine.simd_avx2_batches);
  reg.GetCounter(std::string("game/simd/dispatch_") +
                 simd::SimdModeName(simd::ActiveSimdMode()))
      .Increment();
  // Payoff-ledger savings (game/payoff_ledger.h): what the OthersView
  // rebuild path would have cost, measured rather than estimated.
  reg.GetCounter("game/ledger/sorts_eliminated")
      .Add(result.engine.ledger.sorts_eliminated);
  reg.GetCounter("game/ledger/bytes_not_allocated")
      .Add(result.engine.ledger.bytes_not_allocated);
  reg.GetCounter("game/ledger/memmove_elements")
      .Add(result.engine.ledger.memmove_elements);
  reg.GetCounter("game/ledger/scratch_reuses")
      .Add(result.engine.ledger.scratch_reuses);
}

}  // namespace fta
