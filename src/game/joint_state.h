#ifndef FTA_GAME_JOINT_STATE_H_
#define FTA_GAME_JOINT_STATE_H_

#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Sentinel strategy index for the null strategy (no delivery points).
inline constexpr int32_t kNullStrategy = -1;

/// The joint strategy vector of the FTA game plus delivery-point ownership
/// bookkeeping. Strategies are indices into VdpsCatalog::strategies(w);
/// kNullStrategy means the worker delivers nothing.
///
/// Invariant: the delivery point sets of the chosen strategies are pairwise
/// disjoint (owner_of tracks who holds each point).
class JointState {
 public:
  /// Starts with every worker on the null strategy.
  JointState(const Instance& instance, const VdpsCatalog& catalog);

  const Instance& instance() const { return *instance_; }
  const VdpsCatalog& catalog() const { return *catalog_; }

  /// Current strategy index of worker w (kNullStrategy if null).
  int32_t strategy_of(size_t w) const { return strategy_[w]; }
  /// Current payoff of worker w (0 under the null strategy).
  double payoff_of(size_t w) const { return payoff_[w]; }
  /// All current payoffs (one per worker).
  const std::vector<double>& payoffs() const { return payoff_; }

  /// True if worker w could switch to its strategy `idx` right now: every
  /// delivery point of that VDPS is free or already owned by w itself.
  /// kNullStrategy is always available.
  bool IsAvailable(size_t w, int32_t idx) const;

  /// Switches worker w to strategy `idx` (must be available): releases the
  /// old VDPS's points and claims the new ones.
  void Apply(size_t w, int32_t idx);

  /// Owner worker of a delivery point, or -1 if unclaimed.
  int32_t owner_of(uint32_t dp) const { return owner_[dp]; }

  /// Snapshot of the joint strategy vector (for convergence tests
  /// W.st^t == W.st^{t-1}).
  const std::vector<int32_t>& joint_strategy() const { return strategy_; }

  /// Materializes the assignment A from the current joint strategy.
  Assignment ToAssignment() const;

  /// Deep self-check of the state against its catalog (FTA_VALIDATE
  /// contract, called at solver phase boundaries): strategy indices in
  /// range, `owner_` exactly the union of the chosen strategies' delivery
  /// points (which also proves Definition 8 disjointness), and every
  /// cached payoff equal to its strategy's materialized payoff.
  Status ValidateInvariants() const;

 private:
  const Instance* instance_;
  const VdpsCatalog* catalog_;
  std::vector<int32_t> strategy_;
  std::vector<double> payoff_;
  std::vector<int32_t> owner_;  // per delivery point; -1 = free
};

}  // namespace fta

#endif  // FTA_GAME_JOINT_STATE_H_
