#ifndef FTA_GAME_INIT_H_
#define FTA_GAME_INIT_H_

#include <cstdint>
#include <vector>

#include "game/joint_state.h"
#include "util/rng.h"
#include "util/status.h"

namespace fta {

/// The random initial assignment shared by Algorithms 2 and 3 (lines 6-16):
/// in worker order, each worker draws a uniformly random *available*
/// singleton VDPS (|VDPS| = 1) and claims it; workers with no available
/// singleton start on the null strategy.
void RandomSingletonInit(JointState& state, Rng& rng);

/// Warm-start initial assignment for the streaming dispatcher: applies a
/// given joint strategy vector (one index into the catalog's strategy list
/// per worker, kNullStrategy for idle) in worker order. The vector must be
/// Definition-8 valid against the state's catalog — every index in range
/// and the chosen delivery point sets pairwise disjoint; an invalid vector
/// returns an error with the state left partially seeded (callers treat
/// that as a programming error and abort via FTA_CHECK_OK).
Status SeedInit(JointState& state, const std::vector<int32_t>& strategy);

}  // namespace fta

#endif  // FTA_GAME_INIT_H_
