#ifndef FTA_GAME_INIT_H_
#define FTA_GAME_INIT_H_

#include "game/joint_state.h"
#include "util/rng.h"

namespace fta {

/// The random initial assignment shared by Algorithms 2 and 3 (lines 6-16):
/// in worker order, each worker draws a uniformly random *available*
/// singleton VDPS (|VDPS| = 1) and claims it; workers with no available
/// singleton start on the null strategy.
void RandomSingletonInit(JointState& state, Rng& rng);

}  // namespace fta

#endif  // FTA_GAME_INIT_H_
