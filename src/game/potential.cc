#include "game/potential.h"

#include <algorithm>
#include <numeric>

#include "util/math_util.h"
#include "util/simd.h"

namespace fta {

double ExactPotential(const std::vector<double>& payoffs, double alpha) {
  // The generic entry point for unsorted input; sorted-view holders (the
  // payoff ledger, the priority snapshots) call the P_dif overload below.
  // This *is* the sanctioned copy-and-sort fallback, hence the escape:
  // NOLINTNEXTLINE(fta-det)
  const double p_dif = MeanAbsolutePairwiseDifference(payoffs);
  return ExactPotential(payoffs, alpha, p_dif);
}

double ExactPotential(const std::vector<double>& payoffs, double alpha,
                      double payoff_difference) {
  const double total =
      std::accumulate(payoffs.begin(), payoffs.end(), 0.0);
  const size_t n = payoffs.size();
  if (n < 2) return total;
  // Σ_{k<l} |P_k − P_l| = P_dif · n(n−1)/2.
  const double pairwise_sum = payoff_difference * static_cast<double>(n) *
                              static_cast<double>(n - 1) / 2.0;
  return total - alpha / static_cast<double>(n - 1) * pairwise_sum;
}

double PaperPotential(const std::vector<double>& payoffs,
                      const IauParams& params) {
  const size_t n = payoffs.size();
  if (n == 0) return 0.0;
  if (n == 1) return payoffs[0];
  // One sort + one canonical prefix pass instead of the legacy per-worker
  // O(n) others-vector rebuild (n² total): worker i's own slot in the full
  // sorted array contributes |own − own| = 0 to both envy sums, so the
  // rank arithmetic over all n values equals the exclude-one Mp/Lp with
  // the divisor m = n − 1 written out explicitly.
  std::vector<double> sorted = payoffs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> prefix(n + 1, 0.0);
  simd::BlockedPrefixSum(sorted.data(), n, prefix.data());
  const double total = prefix[n];
  const double m = static_cast<double>(n - 1);
  const double alpha_m = params.alpha / m;
  const double beta_m = params.beta / m;
  double phi = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double own = payoffs[i];
    const size_t k = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), own) -
        sorted.begin());
    const double above = static_cast<double>(n - k);
    const double mp = (total - prefix[k]) - above * own;
    const double lp = static_cast<double>(k) * own - prefix[k];
    phi += own - alpha_m * mp - beta_m * lp;
  }
  return phi;
}

}  // namespace fta
