#include "game/potential.h"

#include <numeric>

#include "util/math_util.h"

namespace fta {

double ExactPotential(const std::vector<double>& payoffs, double alpha) {
  // The generic entry point for unsorted input; sorted-view holders (the
  // payoff ledger, the priority snapshots) call the P_dif overload below.
  // This *is* the sanctioned copy-and-sort fallback, hence the escape:
  // NOLINTNEXTLINE(fta-det)
  const double p_dif = MeanAbsolutePairwiseDifference(payoffs);
  return ExactPotential(payoffs, alpha, p_dif);
}

double ExactPotential(const std::vector<double>& payoffs, double alpha,
                      double payoff_difference) {
  const double total =
      std::accumulate(payoffs.begin(), payoffs.end(), 0.0);
  const size_t n = payoffs.size();
  if (n < 2) return total;
  // Σ_{k<l} |P_k − P_l| = P_dif · n(n−1)/2.
  const double pairwise_sum = payoff_difference * static_cast<double>(n) *
                              static_cast<double>(n - 1) / 2.0;
  return total - alpha / static_cast<double>(n - 1) * pairwise_sum;
}

double PaperPotential(const std::vector<double>& payoffs,
                      const IauParams& params) {
  double phi = 0.0;
  for (size_t i = 0; i < payoffs.size(); ++i) {
    std::vector<double> others;
    others.reserve(payoffs.size() - 1);
    for (size_t j = 0; j < payoffs.size(); ++j) {
      if (j != i) others.push_back(payoffs[j]);
    }
    phi += Iau(payoffs[i], others, params);
  }
  return phi;
}

}  // namespace fta
