#ifndef FTA_GAME_SOLVER_METRICS_H_
#define FTA_GAME_SOLVER_METRICS_H_

#include "game/trace.h"

namespace fta {

/// Mirrors one finished solver run into the global metrics registry:
/// per-solver run/round/convergence counters plus the shared
/// BestResponseEngine work counters. Called once per solve at the run
/// boundary — the GameResult stays the deterministic transport, the
/// registry is the observability view, and publishing here (instead of in
/// the round loop) keeps the hot path untouched.
///
/// `solver` must be a stable registry prefix such as "game/fgt".
void PublishGameRun(const char* solver, const GameResult& result);

}  // namespace fta

#endif  // FTA_GAME_SOLVER_METRICS_H_
