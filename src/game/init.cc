#include "game/init.h"

#include <vector>

namespace fta {

void RandomSingletonInit(JointState& state, Rng& rng) {
  const VdpsCatalog& catalog = state.catalog();
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    std::vector<int32_t> singles;
    const auto& strategies = catalog.strategies(w);
    for (size_t i = 0; i < strategies.size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (catalog.entry(strategies[i].entry_id).dps.size() == 1 &&
          state.IsAvailable(w, idx)) {
        singles.push_back(idx);
      }
    }
    if (!singles.empty()) {
      state.Apply(w, singles[rng.Index(singles.size())]);
    }
  }
}

}  // namespace fta
