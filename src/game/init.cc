#include "game/init.h"

#include <vector>

#include "util/string_util.h"

namespace fta {

void RandomSingletonInit(JointState& state, Rng& rng) {
  const VdpsCatalog& catalog = state.catalog();
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    std::vector<int32_t> singles;
    const auto& strategies = catalog.strategies(w);
    for (size_t i = 0; i < strategies.size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (catalog.entry(strategies[i].entry_id).dps.size() == 1 &&
          state.IsAvailable(w, idx)) {
        singles.push_back(idx);
      }
    }
    if (!singles.empty()) {
      state.Apply(w, singles[rng.Index(singles.size())]);
    }
  }
}

Status SeedInit(JointState& state, const std::vector<int32_t>& strategy) {
  const VdpsCatalog& catalog = state.catalog();
  if (strategy.size() != catalog.num_workers()) {
    return Status::InvalidArgument(
        StrFormat("seed strategy covers %zu workers, catalog has %zu",
                  strategy.size(), catalog.num_workers()));
  }
  for (size_t w = 0; w < strategy.size(); ++w) {
    const int32_t idx = strategy[w];
    if (idx == kNullStrategy) continue;
    if (idx < 0 ||
        static_cast<size_t>(idx) >= catalog.strategies(w).size()) {
      return Status::InvalidArgument(StrFormat(
          "seed strategy %d of worker %zu out of range", idx, w));
    }
    if (!state.IsAvailable(w, idx)) {
      return Status::InvalidArgument(StrFormat(
          "seed strategy %d of worker %zu claims an owned delivery point "
          "(joint strategy not Definition-8 disjoint)",
          idx, w));
    }
    state.Apply(w, idx);
  }
  return Status::Ok();
}

}  // namespace fta
