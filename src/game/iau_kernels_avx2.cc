// AVX2 batched rank kernel (game/iau_kernels.h). The only TU in src/game/
// compiled with -mavx2 (and -ffp-contract=off); fta_lint's
// raw-simd-intrinsics rule sanctions exactly this file and util/simd_avx2.cc.
//
// No floating-point arithmetic happens here — only ordered-quiet `<`
// compares whose mask bits are counted in 64-bit integer lanes. The count
// is therefore the exact lower_bound rank the scalar path computes: ties
// (own == value) produce a false compare on both paths, -0.0 < +0.0 is
// false on both paths, denormals compare exactly (no FTZ/DAZ is enabled),
// and NaN compares false under _CMP_LT_OQ just as under scalar `<`.

#ifdef FTA_SIMD_AVX2

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "game/iau_kernels.h"

namespace fta {
namespace iau_internal {
namespace {

/// Sum of the four 64-bit lanes.
inline uint64_t HorizontalSum(__m256i x) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace

void CountLessBatchAvx2(const double* values, size_t n, const double* owns,
                        size_t count, uint32_t* out_counts) {
  size_t j = 0;
  // 4 own lanes per pass: one stream over `values` feeds four rank counts.
  for (; j + 4 <= count; j += 4) {
    const __m256d o0 = _mm256_broadcast_sd(owns + j);
    const __m256d o1 = _mm256_broadcast_sd(owns + j + 1);
    const __m256d o2 = _mm256_broadcast_sd(owns + j + 2);
    const __m256d o3 = _mm256_broadcast_sd(owns + j + 3);
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(values + i);
      // A true compare is an all-ones lane (-1 as int64); subtracting the
      // mask adds exactly 1 per matching element.
      acc0 = _mm256_sub_epi64(
          acc0, _mm256_castpd_si256(_mm256_cmp_pd(v, o0, _CMP_LT_OQ)));
      acc1 = _mm256_sub_epi64(
          acc1, _mm256_castpd_si256(_mm256_cmp_pd(v, o1, _CMP_LT_OQ)));
      acc2 = _mm256_sub_epi64(
          acc2, _mm256_castpd_si256(_mm256_cmp_pd(v, o2, _CMP_LT_OQ)));
      acc3 = _mm256_sub_epi64(
          acc3, _mm256_castpd_si256(_mm256_cmp_pd(v, o3, _CMP_LT_OQ)));
    }
    uint64_t c0 = HorizontalSum(acc0);
    uint64_t c1 = HorizontalSum(acc1);
    uint64_t c2 = HorizontalSum(acc2);
    uint64_t c3 = HorizontalSum(acc3);
    for (; i < n; ++i) {
      const double v = values[i];
      c0 += v < owns[j] ? 1u : 0u;
      c1 += v < owns[j + 1] ? 1u : 0u;
      c2 += v < owns[j + 2] ? 1u : 0u;
      c3 += v < owns[j + 3] ? 1u : 0u;
    }
    out_counts[j] = static_cast<uint32_t>(c0);
    out_counts[j + 1] = static_cast<uint32_t>(c1);
    out_counts[j + 2] = static_cast<uint32_t>(c2);
    out_counts[j + 3] = static_cast<uint32_t>(c3);
  }
  // Remainder owns: the count is unique whatever computes it, so the scalar
  // lower_bound path serves the tail.
  if (j < count) {
    CountLessBatchScalar(values, n, owns + j, count - j, out_counts + j);
  }
}

void CountLessBatchSortedDescAvx2(const double* values, size_t n,
                                  const double* owns, size_t count,
                                  uint32_t* out_counts) {
  // The scalar merge's shared pointer, advanced four values per compare:
  // `values` is ascending, so the _CMP_LT_OQ mask's set bits form a prefix
  // and countr_one() is exactly how far this own still reaches. A partial
  // prefix means the halting value is inside the block — every later value
  // is >= own too, so the tail loop below terminates immediately.
  size_t p = 0;
  for (size_t j = count; j-- > 0;) {
    const double own = owns[j];
    const __m256d o = _mm256_broadcast_sd(owns + j);
    while (p + 4 <= n) {
      const __m256d v = _mm256_loadu_pd(values + p);
      const unsigned mask = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_cmp_pd(v, o, _CMP_LT_OQ)));
      const unsigned adv = static_cast<unsigned>(std::countr_one(mask));
      p += adv;
      if (adv != 4) break;
    }
    while (p < n && values[p] < own) ++p;
    out_counts[j] = static_cast<uint32_t>(p);
  }
}

size_t SortedIauChunkArgmaxAvx2(const double* prefix, double total,
                                double m, double alpha_m, double beta_m,
                                const double* owns, const uint32_t* counts,
                                size_t c, double* best_utility) {
  double best_u = 0.0;
  size_t best_pos = 0;
  bool have = false;
  size_t j = 0;
  if (c >= 4) {
    const __m256d totalv = _mm256_set1_pd(total);
    const __m256d mv = _mm256_set1_pd(m);
    const __m256d av = _mm256_set1_pd(alpha_m);
    const __m256d bv = _mm256_set1_pd(beta_m);
    // Per-lane utilities: the scalar expression tree, four independent
    // lanes per step. kd and (mv - kd) are exact (counts are small
    // integers, and int -> double conversion and integer-valued
    // subtraction are exact), so every lane computes bit for bit what the
    // scalar kernel computes for that position.
    auto utilities = [&](size_t at) {
      const __m128i ki = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(counts + at));
      const __m256d kd = _mm256_cvtepi32_pd(ki);
      // Four scalar loads beat vgatherdpd for this access pattern (and
      // sidestep GCC's -Wmaybe-uninitialized on the maskless gather).
      const __m256d pk =
          _mm256_setr_pd(prefix[counts[at]], prefix[counts[at + 1]],
                         prefix[counts[at + 2]], prefix[counts[at + 3]]);
      const __m256d own = _mm256_loadu_pd(owns + at);
      const __m256d above = _mm256_sub_pd(mv, kd);
      const __m256d mp = _mm256_sub_pd(_mm256_sub_pd(totalv, pk),
                                       _mm256_mul_pd(above, own));
      const __m256d lp = _mm256_sub_pd(_mm256_mul_pd(kd, own), pk);
      return _mm256_sub_pd(_mm256_sub_pd(own, _mm256_mul_pd(av, mp)),
                           _mm256_mul_pd(bv, lp));
    };
    // Seed with the first block (no sentinel values can leak into the
    // result), then blend strictly-greater lanes: within a lane, positions
    // ascend by 4 per step, so each lane holds its own earliest maximum.
    __m256d bestv = utilities(0);
    __m256i posv = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i curv = posv;
    const __m256i four = _mm256_set1_epi64x(4);
    for (j = 4; j + 4 <= c; j += 4) {
      curv = _mm256_add_epi64(curv, four);
      const __m256d u = utilities(j);
      const __m256d gt = _mm256_cmp_pd(u, bestv, _CMP_GT_OQ);
      bestv = _mm256_blendv_pd(bestv, u, gt);
      posv = _mm256_blendv_epi8(posv, curv, _mm256_castpd_si256(gt));
    }
    // Cross-lane resolve by (utility desc, position asc): lane-strided
    // subsequences interleave, so the tie-break must use the tracked
    // positions, not the lane order.
    alignas(32) double us[4];
    alignas(32) int64_t ps[4];
    _mm256_store_pd(us, bestv);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ps), posv);
    best_u = us[0];
    best_pos = static_cast<size_t>(ps[0]);
    for (int lane = 1; lane < 4; ++lane) {
      const size_t pos = static_cast<size_t>(ps[lane]);
      if (us[lane] > best_u || (us[lane] == best_u && pos < best_pos)) {
        best_u = us[lane];
        best_pos = pos;
      }
    }
    have = true;
  }
  // Tail lanes (positions after every vector position): the scalar tree,
  // strictly-greater replacement only.
  for (; j < c; ++j) {
    const double own = owns[j];
    const size_t k = counts[j];
    const double above = m - static_cast<double>(k);
    const double mp = (total - prefix[k]) - above * own;
    const double lp = static_cast<double>(k) * own - prefix[k];
    const double u = own - alpha_m * mp - beta_m * lp;
    if (!have || u > best_u) {
      best_u = u;
      best_pos = j;
      have = true;
    }
  }
  *best_utility = best_u;
  return best_pos;
}

}  // namespace iau_internal
}  // namespace fta

#endif  // FTA_SIMD_AVX2
