#ifndef FTA_GAME_EQUILIBRIUM_H_
#define FTA_GAME_EQUILIBRIUM_H_

#include <cstdint>
#include <vector>

#include "game/best_response.h"
#include "game/iau.h"
#include "game/joint_state.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Per-worker equilibrium diagnostics of an assignment under the FTA game.
struct WorkerRegret {
  /// Current utility U_i (IAU) under the assignment.
  double utility = 0.0;
  /// Utility of the worker's best available unilateral deviation.
  double best_response_utility = 0.0;
  /// regret = best_response_utility − utility; ≈ 0 at a Nash equilibrium.
  double regret = 0.0;
};

/// Equilibrium analysis of one assignment.
struct EquilibriumReport {
  std::vector<WorkerRegret> regrets;
  /// max_i regret — 0 (up to tolerance) iff pure Nash equilibrium.
  double max_regret = 0.0;
  /// Number of workers with a strictly profitable deviation.
  size_t deviating_workers = 0;
  bool is_nash = false;
};

/// Rebuilds the joint state corresponding to `assignment` (routes must come
/// from the catalog's strategies) and measures every worker's best-response
/// regret under the IAU game. Diagnostic companion to SolveFgt: quantifies
/// *how far* a non-equilibrium assignment (e.g. GTA's) is from stability.
EquilibriumReport AnalyzeEquilibrium(
    const Instance& instance, const VdpsCatalog& catalog,
    const Assignment& assignment, const IauParams& params = IauParams(),
    const BestResponseConfig& engine_config = BestResponseConfig());

/// Enumerates every pure Nash equilibrium of the FTA game by exhaustive
/// search over conflict-free joint strategies. Exponential — tiny
/// instances only (tests, analysis). Stops after `max_states` joint
/// strategies; `complete` is false when capped.
struct NashEnumeration {
  std::vector<Assignment> equilibria;
  size_t states_explored = 0;
  bool complete = false;
};
NashEnumeration EnumeratePureNash(
    const Instance& instance, const VdpsCatalog& catalog,
    const IauParams& params = IauParams(), size_t max_states = 2'000'000,
    const BestResponseConfig& engine_config = BestResponseConfig());

}  // namespace fta

#endif  // FTA_GAME_EQUILIBRIUM_H_
