#ifndef FTA_GAME_BEST_RESPONSE_H_
#define FTA_GAME_BEST_RESPONSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "game/iau.h"
#include "game/joint_state.h"
#include "game/payoff_ledger.h"
#include "game/trace.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fta {

/// Tuning of the shared best-response engine.
struct BestResponseConfig {
  /// Threads for candidate-strategy evaluation; <= 1 keeps every scan on
  /// the calling thread. Results are bit-identical at any thread count:
  /// the reduce applies a total order (utility desc, strategy index asc,
  /// null below index 0) that no shard boundary can disturb.
  size_t num_threads = 1;
  /// Non-owning external pool for the candidate scan. When set it
  /// overrides `num_threads` (an injected 1-thread pool keeps the scan
  /// serial) and MUST outlive the engine — long-lived callers (the
  /// serving layer, benches repeating solves) reuse one pool instead of
  /// paying a thread spawn/join per engine construction. Results are
  /// bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Maintain the incremental availability index: per-strategy cached
  /// availability bits, invalidated through the catalog's delivery-point →
  /// strategies inverted index on every strategy switch. Purely a
  /// performance feature — results are identical with it off.
  bool use_incremental_index = true;
  /// Candidate count below which a scan stays serial even when a pool is
  /// available (fan-out overhead dominates tiny catalogs).
  size_t min_parallel_candidates = 64;
  /// Serve Evaluate's exclude-one view from the incrementally sorted
  /// payoff ledger (no sort, no allocation) instead of rebuilding an
  /// OthersView per call. Results are bit-identical either way
  /// (tests/game_ledger_identity_test.cc); `false` exists only for the
  /// A/B benchmark (bench_micro --bench=game) and the identity tests —
  /// production code has no reason to turn the ledger off.
  bool use_payoff_ledger = true;
};

/// Outcome of one best-response scan.
struct BestResponseOutcome {
  /// The best response (Equation 10 tie-breaking: a challenger must beat
  /// the incumbent's utility beyond tolerance, exact utility ties among
  /// challengers go to the lowest strategy index, kNullStrategy ordering
  /// below index 0).
  int32_t strategy = kNullStrategy;
  /// IAU of `strategy`.
  double utility = 0.0;
  /// IAU of the incumbent strategy.
  double incumbent_utility = 0.0;
  /// Max IAU over the incumbent, the null strategy, and every available
  /// deviation — the best-response utility of equilibrium analysis. Can
  /// exceed `utility` only within the strict-improvement tolerance.
  double best_utility = 0.0;
};

/// The shared inner loop of the game solvers (FGT, IEGT, equilibrium
/// analysis, pure-NE enumeration): evaluates candidate strategies against
/// the current joint state, fanning the scan out over a thread pool with a
/// deterministic sharded reduce, and re-checking a strategy's availability
/// only when a delivery point of that strategy changed owner since the last
/// check (incremental availability index).
///
/// All joint-state mutations must go through Apply() so the availability
/// cache stays coherent. The engine never mutates the state on its own.
/// Not thread-safe: one engine serves one solver loop; internal parallelism
/// is the engine's own business.
class BestResponseEngine {
 public:
  /// Binds the engine to a state. `state` and the catalog it references
  /// must outlive the engine.
  explicit BestResponseEngine(JointState& state,
                              const IauParams& params = IauParams(),
                              const BestResponseConfig& config =
                                  BestResponseConfig());
  ~BestResponseEngine();

  BestResponseEngine(const BestResponseEngine&) = delete;
  BestResponseEngine& operator=(const BestResponseEngine&) = delete;

  /// Full best-response scan of worker w (Equation 10), with utilities.
  BestResponseOutcome Evaluate(size_t w);

  /// The best-response strategy index of worker w.
  int32_t BestResponse(size_t w) { return Evaluate(w).strategy; }

  /// Computes worker w's best response and applies it when it differs from
  /// the incumbent. Returns true if the strategy changed.
  bool Step(size_t w);

  /// Switches worker w to strategy `idx` (must be available), keeping the
  /// availability cache coherent. The only sanctioned mutation path.
  void Apply(size_t w, int32_t idx);

  /// Availability of strategy `idx` for worker w, served from the
  /// incremental index when possible. Identical to
  /// JointState::IsAvailable in outcome.
  bool IsAvailableCached(size_t w, int32_t idx);

  /// Appends (ascending index order, incumbent excluded) every available
  /// strategy of w whose payoff strictly exceeds `payoff_threshold` beyond
  /// tolerance. Strategies are payoff-sorted, so the scan early-exits at
  /// the first non-qualifying payoff. IEGT's evolution candidates.
  void AvailableAbovePayoff(size_t w, double payoff_threshold,
                            std::vector<int32_t>& out);

  /// True if no worker has a strictly improving available deviation.
  bool IsNash();

  /// Exactness contract of the incremental availability index
  /// (FTA_VALIDATE, called at solver round boundaries): every cache slot
  /// that is not kUnknown must agree with a fresh
  /// JointState::IsAvailable scan. Trivially OK when the index is off.
  Status ValidateAvailabilityIndex() const;

  /// Exactness contract of the payoff ledger (FTA_VALIDATE, called at
  /// solver round boundaries): the ledger's sorted array and position maps
  /// must be a bit-exact permutation of the live payoffs. Trivially OK
  /// when the ledger is off.
  Status ValidateLedger() const;

  /// The incrementally sorted payoff ledger (always maintained; Evaluate
  /// consults it only when config.use_payoff_ledger). Solvers use it for
  /// sort-free per-round P_dif / Gini / potential.
  const PayoffLedger& ledger() const { return ledger_; }

  const BestResponseCounters& counters() const {
    counters_.ledger = ledger_.counters();
    return counters_;
  }
  const JointState& state() const { return *state_; }
  const IauParams& params() const { return params_; }

 private:
  static constexpr uint8_t kUnknown = 0;
  static constexpr uint8_t kAvailable = 1;
  static constexpr uint8_t kBlocked = 2;

  // FTA_HOT_BEGIN(candidate-fold)
  /// Candidate in the deterministic reduce; ordered by (utility desc,
  /// index asc). `valid` is false for the identity element. Runs once per
  /// shard winner per Evaluate — allocation-free by construction, checked
  /// by fta_lint's hot-path-allocation rule.
  struct Candidate {
    double utility = 0.0;
    int32_t index = 0;
    bool valid = false;
  };
  static Candidate Better(const Candidate& a, const Candidate& b) {
    if (!a.valid) return b;
    if (!b.valid) return a;
    if (a.utility != b.utility) return a.utility > b.utility ? a : b;
    return a.index <= b.index ? a : b;
  }
  // FTA_HOT_END(candidate-fold)

  /// Reusable gather scratch of the batched candidate scan (one slot per
  /// potential shard, sized once in the constructor to the catalog's max
  /// strategies per worker — Evaluate never allocates in steady state):
  /// available candidates' payoffs stream from the catalog's SoA array into
  /// `owns`, one fused SortedIauBatchArgmax call reduces them, and
  /// `indices` maps the winning position back to its strategy index.
  struct KernelScratch {
    std::vector<double> owns;
    std::vector<int32_t> indices;
  };

  /// Availability with counter accounting into `counters` (per-shard
  /// accumulators during a parallel scan; counters_ otherwise).
  bool Available(size_t w, int32_t idx, BestResponseCounters& counters);

  /// Writes `value` into the cache entry of every strategy touching `dp`,
  /// except the mover's own entries (exempt through self-ownership).
  void Mark(uint32_t dp, size_t mover, uint8_t value);

  /// Shared candidate-scan body of Evaluate(); `view` is either the
  /// ledger's exclude-one view or a freshly built OthersView — both expose
  /// Mp/Lp/Iau over the same sorted sequence, so the outcome is
  /// bit-identical (DESIGN.md §9).
  template <typename View>
  BestResponseOutcome EvaluateWithView(size_t w, const View& view);

  JointState* state_;
  IauParams params_;
  BestResponseConfig config_;
  std::unique_ptr<ThreadPool> owned_pool_;  // only when no injected pool
  ThreadPool* pool_ = nullptr;  // injected or owned_pool_.get(); may be null
  /// avail_[w][i]: cached availability of strategy i for worker w.
  std::vector<std::vector<uint8_t>> avail_;
  /// Per-shard batch scratch; scratch_[0] serves the serial path.
  std::vector<KernelScratch> scratch_;
  /// Incrementally sorted payoffs; kept coherent by Apply().
  PayoffLedger ledger_;
  /// mutable: counters() is conceptually const but folds the ledger's own
  /// counters in on read so round deltas include them.
  mutable BestResponseCounters counters_;
};

}  // namespace fta

#endif  // FTA_GAME_BEST_RESPONSE_H_
