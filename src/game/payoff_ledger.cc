#include "game/payoff_ledger.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "game/potential.h"
#include "util/math_util.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace fta {

void PayoffLedger::Reset(const std::vector<double>& payoffs) {
  const size_t n = payoffs.size();
  // Sort (payoff, worker) pairs by payoff; ties keep worker order for a
  // deterministic slot assignment (slot order among ties never affects
  // values, but determinism keeps Validate and tests simple).
  std::vector<std::pair<double, uint32_t>> order(n);
  for (size_t w = 0; w < n; ++w) {
    order[w] = {payoffs[w], static_cast<uint32_t>(w)};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  sorted_.resize(n);
  worker_at_.resize(n);
  pos_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_[i] = order[i].first;
    worker_at_[i] = order[i].second;
    pos_[order[i].second] = static_cast<uint32_t>(i);
  }
  // Size the scratch once; Exclude() never reallocates afterwards.
  scratch_.values_.assign(n == 0 ? 0 : n - 1, 0.0);
  scratch_.prefix_.assign(n == 0 ? 1 : n, 0.0);
}

// FTA_HOT_BEGIN(ledger-steady-state)
// Steady-state region (fta_lint hot-path-allocation): Update/Exclude/
// metric reads run once per accepted move. Reset() above is the one
// sanctioned allocation point — it sizes the scratch these reuse.

void PayoffLedger::Update(size_t w, double payoff) {
  const size_t p = pos_[w];
  const double old = sorted_[p];
  if (payoff > old) {
    // Slide w's slot right to just before the first element > payoff.
    const double* begin = sorted_.data();
    const size_t q = static_cast<size_t>(
        std::upper_bound(begin + p + 1, begin + sorted_.size(), payoff) -
        begin) - 1;
    if (q > p) {
      std::memmove(&sorted_[p], &sorted_[p + 1], (q - p) * sizeof(double));
      for (size_t i = p; i < q; ++i) {
        worker_at_[i] = worker_at_[i + 1];
        pos_[worker_at_[i]] = static_cast<uint32_t>(i);
      }
      counters_.memmove_elements += q - p;
    }
    sorted_[q] = payoff;
    worker_at_[q] = static_cast<uint32_t>(w);
    pos_[w] = static_cast<uint32_t>(q);
  } else if (payoff < old) {
    // Slide left to the first element >= payoff.
    const double* begin = sorted_.data();
    const size_t q = static_cast<size_t>(
        std::lower_bound(begin, begin + p, payoff) - begin);
    if (p > q) {
      std::memmove(&sorted_[q + 1], &sorted_[q], (p - q) * sizeof(double));
      for (size_t i = p; i > q; --i) {
        worker_at_[i] = worker_at_[i - 1];
        pos_[worker_at_[i]] = static_cast<uint32_t>(i);
      }
      counters_.memmove_elements += p - q;
    }
    sorted_[q] = payoff;
    worker_at_[q] = static_cast<uint32_t>(w);
    pos_[w] = static_cast<uint32_t>(q);
  } else {
    // Equal by value (possibly a different zero sign): position holds.
    sorted_[p] = payoff;
  }
}

const LedgerView& PayoffLedger::Exclude(size_t w) {
  const size_t n = sorted_.size();
  const size_t p = pos_[w];
  double* out = scratch_.values_.data();
  if (p > 0) std::memcpy(out, sorted_.data(), p * sizeof(double));
  if (p + 1 < n) {
    std::memcpy(out + p, sorted_.data() + p + 1, (n - 1 - p) * sizeof(double));
  }
  // Exactly OthersView's accumulation over exactly its sorted sequence:
  // the canonical blocked prefix kernel (util/simd.h), bit-identical on
  // scalar and AVX2 dispatch.
  simd::BlockedPrefixSum(out, n == 0 ? 0 : n - 1, scratch_.prefix_.data());
  ++counters_.sorts_eliminated;
  ++counters_.scratch_reuses;
  // The rebuild path allocates the (n-1)-element `others` vector and the
  // n-element prefix array afresh on every call.
  counters_.bytes_not_allocated +=
      (n == 0 ? 0 : (2 * n - 1)) * sizeof(double);
  return scratch_;
}

double PayoffLedger::PayoffDifference() const {
  ++counters_.sorts_eliminated;
  counters_.bytes_not_allocated += sorted_.size() * sizeof(double);
  return MeanAbsolutePairwiseDifferenceSorted(sorted_);
}

double PayoffLedger::Gini() const {
  ++counters_.sorts_eliminated;
  counters_.bytes_not_allocated += sorted_.size() * sizeof(double);
  return GiniSorted(sorted_);
}

double PayoffLedger::ExactPotential(const std::vector<double>& payoffs,
                                    double alpha) const {
  return fta::ExactPotential(payoffs, alpha, PayoffDifference());
}

// FTA_HOT_END(ledger-steady-state)

Status PayoffLedger::Validate(const std::vector<double>& payoffs) const {
  if (payoffs.size() != sorted_.size() || pos_.size() != sorted_.size() ||
      worker_at_.size() != sorted_.size()) {
    return Status::Internal(
        StrFormat("payoff ledger sized %zu against %zu payoffs",
                  sorted_.size(), payoffs.size()));
  }
  for (size_t i = 0; i + 1 < sorted_.size(); ++i) {
    if (sorted_[i] > sorted_[i + 1]) {
      return Status::Internal(StrFormat(
          "ledger out of order at slot %zu: %.17g > %.17g", i, sorted_[i],
          sorted_[i + 1]));
    }
  }
  for (size_t i = 0; i < sorted_.size(); ++i) {
    const uint32_t w = worker_at_[i];
    if (w >= pos_.size() || pos_[w] != i) {
      return Status::Internal(StrFormat(
          "ledger slot %zu names worker %u whose pos is inconsistent", i,
          w));
    }
  }
  for (size_t w = 0; w < payoffs.size(); ++w) {
    const double recorded = sorted_[pos_[w]];
    if (std::bit_cast<uint64_t>(recorded) !=
        std::bit_cast<uint64_t>(payoffs[w])) {
      return Status::Internal(StrFormat(
          "ledger stale for worker %zu: recorded %.17g, actual %.17g", w,
          recorded, payoffs[w]));
    }
  }
  return Status::Ok();
}

}  // namespace fta
