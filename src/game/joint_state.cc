#include "game/joint_state.h"

#include "util/logging.h"

namespace fta {

JointState::JointState(const Instance& instance, const VdpsCatalog& catalog)
    : instance_(&instance),
      catalog_(&catalog),
      strategy_(instance.num_workers(), kNullStrategy),
      payoff_(instance.num_workers(), 0.0),
      owner_(instance.num_delivery_points(), -1) {
  FTA_CHECK(catalog.num_workers() == instance.num_workers());
}

bool JointState::IsAvailable(size_t w, int32_t idx) const {
  if (idx == kNullStrategy) return true;
  const WorkerStrategy& st =
      catalog_->strategies(w)[static_cast<size_t>(idx)];
  for (uint32_t dp : catalog_->entry(st.entry_id).dps) {
    const int32_t owner = owner_[dp];
    if (owner != -1 && owner != static_cast<int32_t>(w)) return false;
  }
  return true;
}

void JointState::Apply(size_t w, int32_t idx) {
  FTA_DCHECK(IsAvailable(w, idx));
  const int32_t old = strategy_[w];
  if (old == idx) return;
  if (old != kNullStrategy) {
    const WorkerStrategy& st =
        catalog_->strategies(w)[static_cast<size_t>(old)];
    for (uint32_t dp : catalog_->entry(st.entry_id).dps) owner_[dp] = -1;
  }
  strategy_[w] = idx;
  if (idx == kNullStrategy) {
    payoff_[w] = 0.0;
    return;
  }
  const WorkerStrategy& st = catalog_->strategies(w)[static_cast<size_t>(idx)];
  for (uint32_t dp : catalog_->entry(st.entry_id).dps) {
    owner_[dp] = static_cast<int32_t>(w);
  }
  payoff_[w] = st.payoff;
}

Assignment JointState::ToAssignment() const {
  Assignment a(instance_->num_workers());
  for (size_t w = 0; w < strategy_.size(); ++w) {
    if (strategy_[w] == kNullStrategy) continue;
    a.SetRoute(w, catalog_->strategies(w)[static_cast<size_t>(strategy_[w])]
                      .route);
  }
  return a;
}

}  // namespace fta
