#include "game/joint_state.h"

#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fta {

JointState::JointState(const Instance& instance, const VdpsCatalog& catalog)
    : instance_(&instance),
      catalog_(&catalog),
      strategy_(instance.num_workers(), kNullStrategy),
      payoff_(instance.num_workers(), 0.0),
      owner_(instance.num_delivery_points(), -1) {
  FTA_CHECK(catalog.num_workers() == instance.num_workers());
}

bool JointState::IsAvailable(size_t w, int32_t idx) const {
  if (idx == kNullStrategy) return true;
  const WorkerStrategy& st =
      catalog_->strategies(w)[static_cast<size_t>(idx)];
  for (uint32_t dp : catalog_->entry(st.entry_id).dps) {
    const int32_t owner = owner_[dp];
    if (owner != -1 && owner != static_cast<int32_t>(w)) return false;
  }
  return true;
}

void JointState::Apply(size_t w, int32_t idx) {
  FTA_DCHECK(IsAvailable(w, idx));
  const int32_t old = strategy_[w];
  if (old == idx) return;
  if (old != kNullStrategy) {
    const WorkerStrategy& st =
        catalog_->strategies(w)[static_cast<size_t>(old)];
    for (uint32_t dp : catalog_->entry(st.entry_id).dps) owner_[dp] = -1;
  }
  strategy_[w] = idx;
  if (idx == kNullStrategy) {
    payoff_[w] = 0.0;
    return;
  }
  const WorkerStrategy& st = catalog_->strategies(w)[static_cast<size_t>(idx)];
  for (uint32_t dp : catalog_->entry(st.entry_id).dps) {
    owner_[dp] = static_cast<int32_t>(w);
  }
  payoff_[w] = st.payoff;
}

Assignment JointState::ToAssignment() const {
  Assignment a(instance_->num_workers());
  for (size_t w = 0; w < strategy_.size(); ++w) {
    if (strategy_[w] == kNullStrategy) continue;
    a.SetRoute(w, catalog_->strategies(w)[static_cast<size_t>(strategy_[w])]
                      .route);
  }
  FTA_DCHECK_OK(ValidateInvariants());
  FTA_DCHECK_OK(a.Validate(*instance_));
  return a;
}

Status JointState::ValidateInvariants() const {
  if (strategy_.size() != instance_->num_workers() ||
      payoff_.size() != instance_->num_workers() ||
      owner_.size() != instance_->num_delivery_points()) {
    return Status::Internal("joint state sized off its instance");
  }
  std::vector<int32_t> expected_owner(owner_.size(), -1);
  for (size_t w = 0; w < strategy_.size(); ++w) {
    const int32_t idx = strategy_[w];
    if (idx == kNullStrategy) {
      if (payoff_[w] != 0.0) {
        return Status::Internal(StrFormat(
            "null-strategy worker %zu has nonzero cached payoff %g", w,
            payoff_[w]));
      }
      continue;
    }
    const auto& strategies = catalog_->strategies(w);
    if (idx < 0 || static_cast<size_t>(idx) >= strategies.size()) {
      return Status::Internal(
          StrFormat("worker %zu strategy index %d out of range", w, idx));
    }
    const WorkerStrategy& st = strategies[static_cast<size_t>(idx)];
    // Payoffs are copied verbatim from the catalog on Apply, so the cached
    // value must match bit-for-bit.
    if (payoff_[w] != st.payoff) {
      return Status::Internal(StrFormat(
          "worker %zu cached payoff %.17g != strategy payoff %.17g", w,
          payoff_[w], st.payoff));
    }
    for (uint32_t dp : catalog_->entry(st.entry_id).dps) {
      if (expected_owner[dp] != -1) {
        return Status::Internal(StrFormat(
            "delivery point %u claimed by workers %d and %zu", dp,
            expected_owner[dp], w));
      }
      expected_owner[dp] = static_cast<int32_t>(w);
    }
  }
  for (size_t dp = 0; dp < owner_.size(); ++dp) {
    if (owner_[dp] != expected_owner[dp]) {
      return Status::Internal(StrFormat(
          "owner index stale at delivery point %zu: recorded %d, actual %d",
          dp, owner_[dp], expected_owner[dp]));
    }
  }
  return Status::Ok();
}

}  // namespace fta
