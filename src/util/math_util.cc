#include "util/math_util.h"

#include <algorithm>
#include <numeric>

#include "util/simd.h"

namespace fta {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Min(const std::vector<double>& v) {
  if (v.empty()) return kInfinity;
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return -kInfinity;
  return *std::max_element(v.begin(), v.end());
}

double MeanAbsolutePairwiseDifference(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  return MeanAbsolutePairwiseDifferenceSorted(sorted);
}

double MeanAbsolutePairwiseDifferenceSorted(
    const std::vector<double>& sorted) {
  const size_t n = sorted.size();
  if (n < 2) return 0.0;
  // For sorted x: sum_{i<j} (x_j - x_i) = sum_j x_j * j - prefix_sum_j,
  // accumulated under the library's canonical blocked order (util/simd.h) —
  // identical bits from the scalar and AVX2 kernels.
  const double total = simd::PairwiseDiffTotalSorted(sorted.data(), n);
  // Equation 2 sums over ordered pairs (i, j), i != j — i.e. each unordered
  // pair twice — and divides by n(n-1).
  return 2.0 * total / (static_cast<double>(n) * static_cast<double>(n - 1));
}

double Gini(const std::vector<double>& v) {
  const size_t n = v.size();
  if (n < 2) return 0.0;
  const double m = Mean(v);
  if (m <= 0.0) return 0.0;
  return MeanAbsolutePairwiseDifference(v) / (2.0 * m);
}

double GiniSorted(const std::vector<double>& sorted) {
  const size_t n = sorted.size();
  if (n < 2) return 0.0;
  const double m = Mean(sorted);
  if (m <= 0.0) return 0.0;
  return MeanAbsolutePairwiseDifferenceSorted(sorted) / (2.0 * m);
}

double JainFairnessIndex(const std::vector<double>& v) {
  if (v.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : v) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(v.size()) * sum_sq);
}

double MinMaxRatio(const std::vector<double>& v) {
  if (v.empty()) return 1.0;
  const double hi = Max(v);
  if (hi <= 0.0) return 0.0;
  return Min(v) / hi;
}

}  // namespace fta
