#ifndef FTA_UTIL_STATUS_H_
#define FTA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace fta {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kParseError,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error result, modeled after absl::Status.
///
/// The library does not use exceptions for recoverable errors; fallible
/// operations (parsing, IO, precondition-checked constructors) return a
/// Status or StatusOr<T> instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message. A kOk code with a
  /// message is normalized to plain OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing value() on an
/// error aborts the process (programming error), so callers must check ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value if OK, otherwise the supplied default.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fta

#endif  // FTA_UTIL_STATUS_H_
