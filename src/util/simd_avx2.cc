// AVX2 implementations of the order-canonical reductions (util/simd.h).
// This TU — and only this TU in src/util/ — is compiled with -mavx2 (plus
// -ffp-contract=off so no a*b+c ever fuses into an FMA; a fused multiply-add
// rounds once where the scalar path rounds twice, which would break the
// bit-identity contract). fta_lint's raw-simd-intrinsics rule sanctions
// exactly the kernel TUs; every other file must stay intrinsic-free.
//
// The in-register Hillis-Steele scan below realizes the blocked-canonical
// association documented on BlockedPrefixSum:
//
//   s1 = x + shift1(x)   = [a, a+b, b+c, c+d]
//   s2 = s1 + shift2(s1) = [a, a+b, (b+c)+a, (c+d)+(a+b)]
//
// Lane 2 computes (b+c)+a where the scalar kernel writes carry + (bc + a);
// float addition is commutative bitwise, so vcarry + s2 matches the scalar
// carry + (...) lane for lane.

#ifdef FTA_SIMD_AVX2

#include <immintrin.h>

#include <cstddef>

#include "util/simd.h"

namespace fta {
namespace simd {
namespace internal {
namespace {

/// [x0, x1, x2, x3] -> [0, x0, x1, x2]: shift one lane up, zero-fill.
inline __m256d ShiftUpOne(__m256d x) {
  // 0x90 = lanes [src0, src0, src1, src2]; blend lane 0 from zero.
  const __m256d rotated = _mm256_permute4x64_pd(x, 0x90);
  return _mm256_blend_pd(rotated, _mm256_setzero_pd(), 0x1);
}

/// [x0, x1, x2, x3] -> [0, 0, x0, x1].
inline __m256d ShiftUpTwo(__m256d x) {
  // Selector 0x08: low 128 zeroed, high 128 = source's low 128.
  return _mm256_permute2f128_pd(x, x, 0x08);
}

/// Inclusive in-register scan: [a, a+b, (b+c)+a, (c+d)+(a+b)].
inline __m256d InclusiveScan(__m256d x) {
  const __m256d s1 = _mm256_add_pd(x, ShiftUpOne(x));
  return _mm256_add_pd(s1, ShiftUpTwo(s1));
}

/// Broadcast of lane 3.
inline __m256d BroadcastLane3(__m256d x) {
  return _mm256_permute4x64_pd(x, 0xFF);
}

}  // namespace

void BlockedPrefixSumAvx2(const double* values, size_t n, double* prefix) {
  prefix[0] = 0.0;
  __m256d vcarry = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(values + i);
    const __m256d out = _mm256_add_pd(vcarry, InclusiveScan(x));
    _mm256_storeu_pd(prefix + i + 1, out);
    vcarry = BroadcastLane3(out);
  }
  double carry = prefix[i];
  for (; i < n; ++i) {
    carry = carry + values[i];
    prefix[i + 1] = carry;
  }
}

double PairwiseDiffTotalSortedAvx2(const double* values, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  __m256d vcarry = _mm256_setzero_pd();
  __m256d idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d four = _mm256_set1_pd(4.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(values + i);
    const __m256d scan = InclusiveScan(x);
    // Exclusive prefixes: [carry+0, carry+a, carry+ab, carry+(bc+a)].
    const __m256d excl = _mm256_add_pd(vcarry, ShiftUpOne(scan));
    acc = _mm256_add_pd(acc, _mm256_sub_pd(_mm256_mul_pd(x, idx), excl));
    vcarry = _mm256_add_pd(vcarry, BroadcastLane3(scan));
    idx = _mm256_add_pd(idx, four);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  double carries[4];
  _mm256_storeu_pd(carries, vcarry);
  double carry = carries[0];
  for (; i < n; ++i) {
    total = total + (values[i] * static_cast<double>(i) - carry);
    carry = carry + values[i];
  }
  return total;
}

}  // namespace internal
}  // namespace simd
}  // namespace fta

#endif  // FTA_SIMD_AVX2
