#ifndef FTA_UTIL_SIMD_H_
#define FTA_UTIL_SIMD_H_

#include <cstddef>

namespace fta {
namespace simd {

/// Which instruction set the SIMD kernel layer executes with. The two paths
/// are bit-identical by construction (see DESIGN.md §11): integer rank
/// counts are exact, and every float reduction follows the same fixed
/// blocked accumulation order in both implementations — so the mode is a
/// pure performance choice that never shows up in a digest.
enum class SimdMode {
  kScalar = 0,
  kAvx2 = 1,
};

/// True iff the AVX2 kernel TUs were compiled in (-DFTA_SIMD=ON on x86-64)
/// AND the running CPU reports AVX2 support.
bool CpuSupportsAvx2();

/// The mode the kernel entry points dispatch to. Resolved once, on first
/// use, from the FTA_SIMD environment variable ("scalar" | "avx2" |
/// "auto"/unset; "avx2" on an unsupported host logs a warning and falls
/// back to scalar) and CPUID, then cached. Thread-safe.
SimdMode ActiveSimdMode();

/// Overrides the dispatch mode (tests force scalar-vs-AVX2 A/B runs with
/// this). Returns false — and leaves the mode unchanged — when kAvx2 is
/// requested but unavailable (not compiled in, or no CPU support).
bool SetSimdMode(SimdMode mode);

/// "scalar" / "avx2", for reports and logs.
const char* SimdModeName(SimdMode mode);

/// Blocked-canonical prefix sums: writes prefix[0] = 0 and prefix[i + 1] =
/// sum of values[0..i] under the library's canonical accumulation order —
/// full blocks of 4 fold as
///
///   prefix[i+1] = carry + a            ab = a + b
///   prefix[i+2] = carry + ab           bc = b + c
///   prefix[i+3] = carry + (bc + a)     cd = c + d
///   prefix[i+4] = carry + (cd + ab)    carry' = prefix[i+4]
///
/// and the (n mod 4) tail continues serially. This is exactly the
/// association an in-register AVX2 Hillis-Steele scan produces, so the
/// scalar and AVX2 implementations agree bit for bit; for n < 4 it
/// degenerates to the plain serial left-to-right pass. `prefix` must have
/// n + 1 slots. Dispatches on ActiveSimdMode().
void BlockedPrefixSum(const double* values, size_t n, double* prefix);

/// Σ_{i<j} (values[j] - values[i]) over an ascending sequence — the raw
/// total MeanAbsolutePairwiseDifferenceSorted scales into P_dif — under the
/// canonical order: four block-striped lane accumulators fed by the same
/// blocked exclusive prefixes as BlockedPrefixSum, folded as
/// (acc0 + acc1) + (acc2 + acc3), then the serial tail. Dispatches on
/// ActiveSimdMode(); both paths are bit-identical.
double PairwiseDiffTotalSorted(const double* values, size_t n);

namespace internal {

/// Scalar reference implementations — the canonical semantics, spelled out.
void BlockedPrefixSumScalar(const double* values, size_t n, double* prefix);
double PairwiseDiffTotalSortedScalar(const double* values, size_t n);

#ifdef FTA_SIMD_AVX2
/// AVX2 twins, compiled only in the sanctioned -mavx2 TU (simd_avx2.cc).
void BlockedPrefixSumAvx2(const double* values, size_t n, double* prefix);
double PairwiseDiffTotalSortedAvx2(const double* values, size_t n);
#endif

}  // namespace internal
}  // namespace simd
}  // namespace fta

#endif  // FTA_UTIL_SIMD_H_
