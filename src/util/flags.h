#ifndef FTA_UTIL_FLAGS_H_
#define FTA_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fta {

/// Minimal command-line flag parser for the example binaries and the CLI
/// tool: `--name=value`, `--name value`, and bare `--bool_flag` forms.
/// Flags are registered on a parser instance (no global registry), parsed
/// once, and leftover positional arguments are preserved in order.
class FlagParser {
 public:
  /// Registers a flag bound to `target`. `help` is shown by Usage().
  void AddString(const std::string& name, std::string* target,
                 std::string help);
  void AddInt(const std::string& name, int64_t* target, std::string help);
  void AddDouble(const std::string& name, double* target, std::string help);
  void AddBool(const std::string& name, bool* target, std::string help);
  void AddSizeT(const std::string& name, size_t* target, std::string help);

  /// Parses argv (skipping argv[0]). On success, positional (non-flag)
  /// arguments are available via positional(). Unknown flags, missing
  /// values and unparsable values are errors. `--` ends flag parsing.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per registered flag: "--name (help) [default: ...]".
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool, kSizeT };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  void Add(const std::string& name, Type type, void* target,
           std::string help);
  const Flag* Find(const std::string& name) const;
  static Status Assign(const Flag& flag, const std::string& value);
  static std::string Render(const Flag& flag);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fta

#endif  // FTA_UTIL_FLAGS_H_
