#include "util/rng.h"

#include <cmath>

namespace fta {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // A state of all zeros is invalid for xoshiro; SplitMix64 cannot produce
  // four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  // Lemire's nearly-divisionless unbiased method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork(uint64_t stream) const {
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return Rng(sm.Next());
}

}  // namespace fta
