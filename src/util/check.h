#ifndef FTA_UTIL_CHECK_H_
#define FTA_UTIL_CHECK_H_

#include <sstream>

#include "util/logging.h"
#include "util/status.h"

/// Runtime contract checking for the FTA library.
///
/// Two severities exist:
///
///  - FTA_CHECK / FTA_CHECK_MSG (util/logging.h): always-on invariant
///    checks. Cheap, guard programming errors on cold paths, never
///    compiled out.
///  - FTA_DCHECK / FTA_DCHECK_MSG / FTA_DCHECK_OK (this header): validation
///    contracts. Compiled out entirely unless the build defines
///    FTA_VALIDATE (cmake -DFTA_VALIDATE=ON). They may be arbitrarily
///    expensive — whole-structure validators run at phase boundaries
///    (catalog finalize, solver round ends, assignment materialization) so
///    the full tier-1 suite stays runnable in validate mode.
///
/// The disabled forms expand to an unevaluated sizeof — the expression is
/// type-checked (so validate-only code cannot rot) but generates no code,
/// executes nothing, and keeps referenced variables "used" for -Werror
/// builds. FTA_CHECK_OK is the always-on Status form.

namespace fta {

/// True when the including translation unit was compiled with validation
/// contracts enabled (cmake -DFTA_VALIDATE=ON). Deliberately internal
/// linkage (non-inline constexpr): a test TU may toggle FTA_VALIDATE
/// independently of the library without an ODR violation.
#ifdef FTA_VALIDATE
constexpr bool kValidateEnabled = true;
#else
constexpr bool kValidateEnabled = false;
#endif

}  // namespace fta

/// Always-on Status check: evaluates `expr` once and aborts with the
/// status message if it is not OK. Use for contract violations that must
/// never ship, not for recoverable errors (those propagate the Status).
#define FTA_CHECK_OK(expr)                                                 \
  do {                                                                     \
    const ::fta::Status fta_check_ok_status_ = (expr);                     \
    if (!fta_check_ok_status_.ok()) {                                      \
      ::fta::internal_logging::CheckFailed(                                \
          #expr " is OK", __FILE__, __LINE__,                              \
          fta_check_ok_status_.ToString());                                \
    }                                                                      \
  } while (false)

#ifdef FTA_VALIDATE

#define FTA_DCHECK(expr) FTA_CHECK(expr)
#define FTA_DCHECK_MSG(expr, msg) FTA_CHECK_MSG(expr, msg)
#define FTA_DCHECK_OK(expr) FTA_CHECK_OK(expr)

#else

/// Disabled contract: unevaluated, zero code, expression still
/// type-checked. (sizeof's operand is never executed.)
#define FTA_DCHECK(expr)                  \
  do {                                    \
    (void)sizeof((expr) ? 1 : 0);         \
  } while (false)

#define FTA_DCHECK_MSG(expr, msg)         \
  do {                                    \
    (void)sizeof((expr) ? 1 : 0);         \
  } while (false)

#define FTA_DCHECK_OK(expr)               \
  do {                                    \
    (void)sizeof((expr).ok() ? 1 : 0);    \
  } while (false)

#endif  // FTA_VALIDATE

#endif  // FTA_UTIL_CHECK_H_
