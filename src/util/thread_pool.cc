#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/logging.h"

namespace fta {
namespace {

std::atomic<uint64_t> g_pools_created{0};

}  // namespace

uint64_t ThreadPool::total_created() {
  return g_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  FTA_CHECK(job != nullptr);
  {
    MutexLock lock(&mu_);
    FTA_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(job));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && in_flight_ == 0)) done_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      job();
    } catch (const std::exception& e) {
      FTA_LOG(kError) << "ThreadPool job threw: " << e.what();
    } catch (...) {
      FTA_LOG(kError) << "ThreadPool job threw a non-std exception";
    }
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Completion is tracked per batch (not via Wait) so concurrent batches
  // and unrelated Submit-ed jobs never block each other.
  struct BatchState {
    Mutex mu;
    CondVar done;
    size_t drivers_left FTA_GUARDED_BY(mu) = 0;
    std::atomic<size_t> next{0};  // lock-free work-stealing cursor
    std::exception_ptr first_error FTA_GUARDED_BY(mu);
  };
  auto state = std::make_shared<BatchState>();
  const size_t drivers = std::min(std::max<size_t>(num_threads(), 1), n);
  {
    MutexLock lock(&state->mu);
    state->drivers_left = drivers;
  }
  // `fn` is captured by reference: this frame outlives the batch because it
  // blocks below until every driver has finished.
  for (size_t t = 0; t < drivers; ++t) {
    Submit([state, n, &fn] {
      for (size_t i = state->next.fetch_add(1); i < n;
           i = state->next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(&state->mu);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
        }
      }
      MutexLock lock(&state->mu);
      if (--state->drivers_left == 0) state->done.NotifyAll();
    });
  }
  MutexLock lock(&state->mu);
  while (state->drivers_left != 0) state->done.Wait(state->mu);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::RunChunked(size_t n, size_t chunk_size,
                            const std::function<void(size_t, size_t, size_t)>&
                                fn) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const size_t chunks = NumChunks(n, chunk_size);
  RunBatch(chunks, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    fn(c, begin, end);
  });
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  std::atomic<size_t> next{0};
  for (size_t t = 0; t < pool.num_threads(); ++t) {
    pool.Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace fta
