#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace fta {
namespace simd {
namespace {

/// -1 = unresolved; otherwise a SimdMode. Resolution is racy-but-idempotent:
/// every thread that loses the CAS re-reads the winner's value.
std::atomic<int> g_mode{-1};

bool Avx2CompiledIn() {
#ifdef FTA_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

SimdMode ResolveFromEnvironment() {
  // Reading the environment is deterministic for a fixed environment; the
  // two modes it selects between are bit-identical anyway.
  const char* env = std::getenv("FTA_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return SimdMode::kScalar;
  }
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    if (CpuSupportsAvx2()) return SimdMode::kAvx2;
    FTA_LOG(kWarning) << "FTA_SIMD=avx2 requested but AVX2 is "
                      << (Avx2CompiledIn() ? "not supported by this CPU"
                                           : "not compiled in (FTA_SIMD=OFF)")
                      << "; falling back to scalar kernels";
    return SimdMode::kScalar;
  }
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    FTA_LOG(kWarning) << "unrecognized FTA_SIMD value '" << env
                      << "' (want scalar|avx2|auto); using auto";
  }
  return CpuSupportsAvx2() ? SimdMode::kAvx2 : SimdMode::kScalar;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(FTA_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdMode ActiveSimdMode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    const int resolved = static_cast<int>(ResolveFromEnvironment());
    int expected = -1;
    if (!g_mode.compare_exchange_strong(expected, resolved,
                                        std::memory_order_acq_rel)) {
      return static_cast<SimdMode>(expected);
    }
    return static_cast<SimdMode>(resolved);
  }
  return static_cast<SimdMode>(mode);
}

bool SetSimdMode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !CpuSupportsAvx2()) return false;
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
  return true;
}

const char* SimdModeName(SimdMode mode) {
  return mode == SimdMode::kAvx2 ? "avx2" : "scalar";
}

namespace internal {

void BlockedPrefixSumScalar(const double* values, size_t n, double* prefix) {
  prefix[0] = 0.0;
  double carry = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double a = values[i];
    const double b = values[i + 1];
    const double c = values[i + 2];
    const double d = values[i + 3];
    const double ab = a + b;
    const double bc = b + c;
    const double cd = c + d;
    prefix[i + 1] = carry + a;
    prefix[i + 2] = carry + ab;
    prefix[i + 3] = carry + (bc + a);
    prefix[i + 4] = carry + (cd + ab);
    carry = prefix[i + 4];
  }
  for (; i < n; ++i) {
    carry = carry + values[i];
    prefix[i + 1] = carry;
  }
}

double PairwiseDiffTotalSortedScalar(const double* values, size_t n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  double carry = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double a = values[i];
    const double b = values[i + 1];
    const double c = values[i + 2];
    const double d = values[i + 3];
    const double ab = a + b;
    const double bc = b + c;
    const double cd = c + d;
    // Exclusive blocked prefixes. Lane 0 adds +0.0 because the vector path
    // computes every lane as vcarry + shifted_scan — for a -0.0 carry that
    // add rounds to +0.0, and both paths must agree bit for bit.
    const double p0 = carry + 0.0;
    const double p1 = carry + a;
    const double p2 = carry + ab;
    const double p3 = carry + (bc + a);
    acc0 = acc0 + (a * static_cast<double>(i) - p0);
    acc1 = acc1 + (b * static_cast<double>(i + 1) - p1);
    acc2 = acc2 + (c * static_cast<double>(i + 2) - p2);
    acc3 = acc3 + (d * static_cast<double>(i + 3) - p3);
    carry = carry + (cd + ab);
  }
  double total = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) {
    total = total + (values[i] * static_cast<double>(i) - carry);
    carry = carry + values[i];
  }
  return total;
}

}  // namespace internal

void BlockedPrefixSum(const double* values, size_t n, double* prefix) {
#ifdef FTA_SIMD_AVX2
  if (ActiveSimdMode() == SimdMode::kAvx2) {
    internal::BlockedPrefixSumAvx2(values, n, prefix);
    return;
  }
#endif
  internal::BlockedPrefixSumScalar(values, n, prefix);
}

double PairwiseDiffTotalSorted(const double* values, size_t n) {
#ifdef FTA_SIMD_AVX2
  if (ActiveSimdMode() == SimdMode::kAvx2) {
    return internal::PairwiseDiffTotalSortedAvx2(values, n);
  }
#endif
  return internal::PairwiseDiffTotalSortedScalar(values, n);
}

}  // namespace simd
}  // namespace fta
