#ifndef FTA_UTIL_THREAD_POOL_H_
#define FTA_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace fta {

/// Fixed-size worker pool for running independent jobs, e.g. per-center task
/// assignment (the paper notes centers are independent and parallelizable).
///
/// Jobs should not throw; the library reports recoverable errors via Status
/// captured inside the job closure. A job that does throw never kills the
/// pool: Submit-ed exceptions are caught and logged, RunBatch captures the
/// first one and rethrows it to the batch's caller.
///
/// Lock discipline (compile-checked under Clang -Wthread-safety, DESIGN.md
/// §13): the queue, the shutdown flag, and the in-flight count are guarded
/// by mu_; every touch goes through a MutexLock scope. threads_ is written
/// only in the constructor and joined in the destructor, both before/after
/// any sharing, so it carries no guard.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains every job still queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Never blocks. Safe to call from a pool worker.
  void Submit(std::function<void()> job) FTA_EXCLUDES(mu_);

  /// Blocks until every submitted job has finished.
  void Wait() FTA_EXCLUDES(mu_);

  /// Bulk-submit/wait helper: runs fn(i) for i in [0, n) on this pool and
  /// blocks until the whole batch has finished, without disturbing other
  /// outstanding jobs. fn must be safe to invoke concurrently for distinct
  /// i. Every index is attempted even when some throw; the first exception
  /// is rethrown here once the batch is done. Must not be called from a
  /// pool worker thread (it would block a lane of its own batch).
  void RunBatch(size_t n, const std::function<void(size_t)>& fn)
      FTA_EXCLUDES(mu_);

  /// Range fan-out: splits [0, n) into NumChunks(n, chunk_size) contiguous
  /// chunks and runs fn(chunk, begin, end) for each as one batch. Chunk
  /// boundaries depend only on (n, chunk_size) — never on the thread count
  /// or scheduling — so callers that write per-chunk results into
  /// chunk-indexed slots and concatenate them in chunk order get
  /// thread-count-invariant output.
  void RunChunked(size_t n, size_t chunk_size,
                  const std::function<void(size_t chunk, size_t begin,
                                           size_t end)>& fn)
      FTA_EXCLUDES(mu_);

  /// Number of chunks RunChunked(n, chunk_size, ...) will produce.
  static size_t NumChunks(size_t n, size_t chunk_size) {
    if (chunk_size == 0) chunk_size = 1;
    return (n + chunk_size - 1) / chunk_size;
  }

  size_t num_threads() const { return threads_.size(); }

  /// Process-lifetime count of ThreadPool constructions. Benches assert
  /// this stays flat across repetitions once warm: repeated solves must
  /// reuse an injected pool (BestResponseConfig::pool, VdpsConfig::pool)
  /// instead of re-spawning workers per iteration.
  static uint64_t total_created();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to invoke concurrently for distinct i.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop() FTA_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::deque<std::function<void()>> queue_ FTA_GUARDED_BY(mu_);
  size_t in_flight_ FTA_GUARDED_BY(mu_) = 0;
  bool shutdown_ FTA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // ctor-built, dtor-joined; unshared
};

}  // namespace fta

#endif  // FTA_UTIL_THREAD_POOL_H_
