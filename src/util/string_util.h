#ifndef FTA_UTIL_STRING_UTIL_H_
#define FTA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fta {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins the elements with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; rejects trailing garbage and empty input.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage and empty input.
StatusOr<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace fta

#endif  // FTA_UTIL_STRING_UTIL_H_
