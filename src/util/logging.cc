#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fta {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::atomic<LogSink*> g_log_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Trims a path down to its basename for compact log prefixes.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

LogSink* SetLogSink(LogSink* sink) { return g_log_sink.exchange(sink); }

void CaptureLogSink::Write(LogLevel /*level*/, std::string_view line) {
  MutexLock lock(&mu_);
  lines_.emplace_back(line);
}

std::vector<std::string> CaptureLogSink::lines() const {
  MutexLock lock(&mu_);
  return lines_;
}

size_t CaptureLogSink::size() const {
  MutexLock lock(&mu_);
  return lines_.size();
}

void CaptureLogSink::Clear() {
  MutexLock lock(&mu_);
  lines_.clear();
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::string msg = stream_.str();
  if (LogSink* sink = g_log_sink.load()) {
    sink->Write(level_, msg);
    return;
  }
  // One buffered write including the newline: fwrite locks the FILE, so
  // concurrent pool-thread log lines can interleave with each other but
  // never split mid-line (two separate writes could).
  msg.push_back('\n');
  std::fwrite(msg.data(), 1, msg.size(), stderr);
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s%s%s\n", Basename(file),
               line, expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace fta
