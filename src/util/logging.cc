#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fta {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Trims a path down to its basename for compact log prefixes.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  const std::string msg = stream_.str();
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s%s%s\n", Basename(file),
               line, expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace fta
