#ifndef FTA_UTIL_RNG_H_
#define FTA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace fta {

/// SplitMix64 — used to seed Xoshiro256** and as a cheap stateless mixer.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random generator (xoshiro256**). All randomized
/// components of the library (generators, game initialization, k-means
/// seeding) take an explicit Rng so that every experiment is reproducible
/// from a single seed.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions if ever needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit value.
  uint64_t Next();
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// bounded rejection method.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();
  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of the whole vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t Index(size_t size) { return static_cast<size_t>(NextBounded(size)); }

  /// Derives an independent child generator; stable given (seed, stream).
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  uint64_t seed_;
};

}  // namespace fta

#endif  // FTA_UTIL_RNG_H_
