#ifndef FTA_UTIL_STOPWATCH_H_
#define FTA_UTIL_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace fta {

/// Wall-clock stopwatch (steady clock). Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch (calling thread's CPU clock); this is the "CPU time"
/// metric the paper reports. Thread-scoped so that per-center timings can
/// be summed meaningfully when centers run on a thread pool. Started on
/// construction.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  /// Elapsed CPU time of the calling thread, in seconds.
  double ElapsedSeconds() const { return Now() - start_; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace fta

#endif  // FTA_UTIL_STOPWATCH_H_
