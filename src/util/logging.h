#ifndef FTA_UTIL_LOGGING_H_
#define FTA_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"

namespace fta {

/// Log severity, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level: messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log lines. Implementations must be
/// thread-safe: concurrent pool workers log without external
/// synchronization.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// Receives one fully formatted line (prefix included, no trailing
  /// newline). Exactly one call per log statement — never a split line.
  virtual void Write(LogLevel level, std::string_view line) = 0;
};

/// Installs `sink` as the process-wide log destination (nullptr restores
/// the default stderr sink). Returns the previously installed sink, or
/// nullptr if stderr was active. The caller keeps ownership and must keep
/// the sink alive until another SetLogSink call replaces it AND all
/// threads that might be mid-log have quiesced.
LogSink* SetLogSink(LogSink* sink);

/// Thread-safe in-memory sink for log-capture tests.
class CaptureLogSink : public LogSink {
 public:
  void Write(LogLevel level, std::string_view line) override;

  /// Snapshot of every captured line, in arrival order.
  std::vector<std::string> lines() const;
  size_t size() const;
  void Clear();

 private:
  mutable Mutex mu_;
  std::vector<std::string> lines_ FTA_GUARDED_BY(mu_);
};

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via the FTA_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the message (if FATAL-checked) and aborts. Used by FTA_CHECK.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

}  // namespace internal_logging
}  // namespace fta

/// Stream-style logging: FTA_LOG(kInfo) << "x=" << x;
#define FTA_LOG(severity)                                           \
  ::fta::internal_logging::LogMessage(::fta::LogLevel::severity,    \
                                      __FILE__, __LINE__)           \
      .stream()

/// Always-on invariant check; aborts with a message on failure. Use for
/// programming errors, not recoverable conditions (those return Status).
#define FTA_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fta::internal_logging::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (false)

/// FTA_CHECK with an extra streamed message built by the caller.
#define FTA_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream fta_check_oss_;                                   \
      fta_check_oss_ << msg; /* NOLINT */                                    \
      ::fta::internal_logging::CheckFailed(#expr, __FILE__, __LINE__,        \
                                           fta_check_oss_.str());            \
    }                                                                        \
  } while (false)

// Validation contracts (FTA_DCHECK, FTA_DCHECK_MSG, FTA_DCHECK_OK) live in
// util/check.h, gated on the FTA_VALIDATE build mode.

#endif  // FTA_UTIL_LOGGING_H_
