#ifndef FTA_UTIL_LOGGING_H_
#define FTA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fta {

/// Log severity, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level: messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via the FTA_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the message (if FATAL-checked) and aborts. Used by FTA_CHECK.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

}  // namespace internal_logging
}  // namespace fta

/// Stream-style logging: FTA_LOG(kInfo) << "x=" << x;
#define FTA_LOG(severity)                                           \
  ::fta::internal_logging::LogMessage(::fta::LogLevel::severity,    \
                                      __FILE__, __LINE__)           \
      .stream()

/// Always-on invariant check; aborts with a message on failure. Use for
/// programming errors, not recoverable conditions (those return Status).
#define FTA_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fta::internal_logging::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (false)

/// FTA_CHECK with an extra streamed message built by the caller.
#define FTA_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream fta_check_oss_;                                   \
      fta_check_oss_ << msg; /* NOLINT */                                    \
      ::fta::internal_logging::CheckFailed(#expr, __FILE__, __LINE__,        \
                                           fta_check_oss_.str());            \
    }                                                                        \
  } while (false)

/// Debug-only check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define FTA_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define FTA_DCHECK(expr) FTA_CHECK(expr)
#endif

#endif  // FTA_UTIL_LOGGING_H_
