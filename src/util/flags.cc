#include "util/flags.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace fta {

void FlagParser::Add(const std::string& name, Type type, void* target,
                     std::string help) {
  FTA_CHECK_MSG(Find(name) == nullptr, "duplicate flag registration");
  FTA_CHECK(target != nullptr);
  Flag flag{name, type, target, std::move(help), ""};
  flag.default_value = Render(flag);
  flags_.push_back(std::move(flag));
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           std::string help) {
  Add(name, Type::kString, target, std::move(help));
}
void FlagParser::AddInt(const std::string& name, int64_t* target,
                        std::string help) {
  Add(name, Type::kInt, target, std::move(help));
}
void FlagParser::AddDouble(const std::string& name, double* target,
                           std::string help) {
  Add(name, Type::kDouble, target, std::move(help));
}
void FlagParser::AddBool(const std::string& name, bool* target,
                         std::string help) {
  Add(name, Type::kBool, target, std::move(help));
}
void FlagParser::AddSizeT(const std::string& name, size_t* target,
                          std::string help) {
  Add(name, Type::kSizeT, target, std::move(help));
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::Assign(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
    case Type::kInt: {
      StatusOr<int64_t> v = ParseInt(value);
      if (!v.ok()) return v.status();
      *static_cast<int64_t*>(flag.target) = *v;
      return Status::Ok();
    }
    case Type::kSizeT: {
      StatusOr<int64_t> v = ParseInt(value);
      if (!v.ok()) return v.status();
      if (*v < 0) {
        return Status::InvalidArgument("--" + flag.name +
                                       " must be non-negative");
      }
      *static_cast<size_t*>(flag.target) = static_cast<size_t>(*v);
      return Status::Ok();
    }
    case Type::kDouble: {
      StatusOr<double> v = ParseDouble(value);
      if (!v.ok()) return v.status();
      *static_cast<double*>(flag.target) = *v;
      return Status::Ok();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled flag type");
}

std::string FlagParser::Render(const Flag& flag) {
  switch (flag.type) {
    case Type::kString:
      return *static_cast<std::string*>(flag.target);
    case Type::kInt:
      return StrFormat("%lld", static_cast<long long>(
                                   *static_cast<int64_t*>(flag.target)));
    case Type::kSizeT:
      return StrFormat("%zu", *static_cast<size_t*>(flag.target));
    case Type::kDouble:
      return StrFormat("%g", *static_cast<double*>(flag.target));
    case Type::kBool:
      return *static_cast<bool*>(flag.target) ? "true" : "false";
  }
  return "";
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!have_value) {
      if (flag->type == Type::kBool) {
        value = "true";  // bare --bool_flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("missing value for --" + name);
      }
    }
    Status s = Assign(*flag, value);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::string FlagParser::Usage() const {
  std::string out;
  for (const Flag& f : flags_) {
    out += StrFormat("  --%-24s %s [default: %s]\n", f.name.c_str(),
                     f.help.c_str(), f.default_value.c_str());
  }
  return out;
}

}  // namespace fta
