#ifndef FTA_UTIL_MUTEX_H_
#define FTA_UTIL_MUTEX_H_

// The repo's ONLY sanctioned synchronization primitives (DESIGN.md §13).
//
// Every locked subsystem (thread pool, log sinks, metrics registry,
// rolling windows, trace buffers, and whatever the sharded server grows
// next) locks through fta::Mutex / fta::MutexLock / fta::CondVar instead
// of the raw std:: primitives, for one reason: these wrappers carry
// Clang's thread-safety capability attributes, so the relationship
// between a lock and the state it guards is part of the type system.
// A field declared
//
//     std::deque<Job> queue_ FTA_GUARDED_BY(mu_);
//
// touched anywhere without `mu_` held is a COMPILE ERROR under
// `clang++ -Wthread-safety` (promoted to -Werror by the
// -DFTA_THREAD_SAFETY=ON CMake option and the CI thread-safety job) —
// the bit-identical-at-any-thread-count contract stops depending on a
// TSan run happening to schedule the racing interleaving.
//
// Under non-Clang compilers (GCC builds the default matrix) the
// FTA_THREAD_ANNOTATION_ATTRIBUTE__ shim expands every annotation to
// nothing, so the wrappers cost exactly what the std primitives they
// hold cost: Mutex is a std::mutex, MutexLock is a lock_guard, CondVar
// is a condition_variable. No virtual dispatch, no extra state.
//
// Raw std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable outside this header are rejected by
// fta_lint's `raw-mutex` rule (no allowlist entries, by policy); the
// escape for genuinely unannotatable code is // NOLINT(fta-det) with a
// reason, but no such site exists today.

#include <condition_variable>  // wrapped by fta::CondVar (sanctioned use)
#include <mutex>               // wrapped by fta::Mutex (sanctioned use)

// ---------------------------------------------------------------------------
// Attribute shim: Clang's capability attributes, nothing elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define FTA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define FTA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define FTA_CAPABILITY(x) FTA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define FTA_SCOPED_CAPABILITY \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a field or variable is protected by the given
/// capability: reads require it held (shared or exclusive), writes
/// require it held exclusively.
#define FTA_GUARDED_BY(x) FTA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Like FTA_GUARDED_BY, for the data a pointer points at.
#define FTA_PT_GUARDED_BY(x) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function-level contract: the caller must hold the capability when
/// calling (and it stays held across the call).
#define FTA_REQUIRES(...) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define FTA_ACQUIRE(...) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define FTA_RELEASE(...) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself; calling with it held would deadlock a non-recursive mutex).
#define FTA_EXCLUDES(...) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held — for
/// code reached only under a lock the analysis cannot see (e.g. via a
/// callback registered while holding it).
#define FTA_ASSERT_EXCLUSIVE_LOCK(...) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(__VA_ARGS__))

/// Documents that a function returns a reference to the given capability
/// (so locking the returned reference counts as locking the original).
#define FTA_RETURN_CAPABILITY(x) \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the function is correct.
#define FTA_NO_THREAD_SAFETY_ANALYSIS \
  FTA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace fta {

class CondVar;

/// An annotated std::mutex. Lock discipline against FTA_GUARDED_BY fields
/// is checked at compile time under Clang (see file comment).
class FTA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FTA_ACQUIRE() { mu_.lock(); }
  void Unlock() FTA_RELEASE() { mu_.unlock(); }

  /// Tells the analysis this thread holds the mutex (no runtime effect).
  void AssertHeld() const FTA_ASSERT_EXCLUSIVE_LOCK() {}

 private:
  friend class CondVar;  // waits on the wrapped handle directly
  std::mutex mu_;
};

/// RAII lock over an fta::Mutex — the lock_guard of the annotated world.
/// The analysis tracks the held capability for the scope's duration.
class FTA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FTA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() FTA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over fta::Mutex. Wait() requires the mutex held and
/// returns with it held (the blocked interval releases it, like every
/// condition variable) — callers re-check their predicate in a while loop
/// under the lock, which is exactly the shape the analysis can verify:
///
///     MutexLock lock(&mu_);
///     while (!ready_) cv_.Wait(mu_);   // ready_ is FTA_GUARDED_BY(mu_)
///
/// There is deliberately no predicate-template overload: the predicate
/// lambda would be analyzed as a separate function with no knowledge of
/// the held lock, producing false positives. The explicit loop keeps
/// every guarded read inside the analyzed, lock-holding frame.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires before returning.
  /// Spurious wakeups happen — always re-check the predicate.
  void Wait(Mutex& mu) FTA_REQUIRES(mu) {
    // Adopt the already-held native handle for the wait, then release the
    // unique_lock's ownership claim so the wrapper's bookkeeping (and the
    // analysis's view that `mu` stayed held) is undisturbed.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fta

#endif  // FTA_UTIL_MUTEX_H_
