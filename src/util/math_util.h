#ifndef FTA_UTIL_MATH_UTIL_H_
#define FTA_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace fta {

/// Sentinel for "unreachable / infeasible" travel and arrival times.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Tolerance used for payoff / utility comparisons throughout the library.
inline constexpr double kEps = 1e-9;

/// a ~ b under the library-wide tolerance.
inline bool ApproxEq(double a, double b, double eps = kEps) {
  return std::fabs(a - b) <= eps * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// a is strictly greater than b beyond tolerance.
inline bool DefinitelyGreater(double a, double b, double eps = kEps) {
  return a > b + eps * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Smallest / largest element; +/-infinity for empty input.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Mean absolute pairwise difference: sum_{i != j} |v_i - v_j| / (n(n-1)).
/// This is exactly the paper's P_dif (Equation 2) applied to payoffs.
/// Computed in O(n log n) via sorting. Returns 0 for n < 2.
double MeanAbsolutePairwiseDifference(const std::vector<double>& v);

/// Sorted-input variant: `sorted` must already be ascending. Performs
/// exactly the canonical blocked accumulation the sorting variant performs
/// after its sort (util/simd.h; scalar and AVX2 dispatch are bit-identical),
/// so on the same multiset the result is bit-identical — this is what lets
/// the game solvers serve per-round P_dif from the incrementally sorted
/// payoff ledger without re-sorting (DESIGN.md §9, §11).
double MeanAbsolutePairwiseDifferenceSorted(const std::vector<double>& sorted);

/// Gini coefficient of a non-negative vector (auxiliary fairness metric).
/// Returns 0 for n < 2 or an all-zero vector.
double Gini(const std::vector<double>& v);

/// Sorted-input variant of Gini. The mean accumulates over the ascending
/// sequence, so relative to Gini() on an unsorted vector the result can
/// differ in the last ulp; it is bit-identical when the input was already
/// ascending.
double GiniSorted(const std::vector<double>& sorted);

/// Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1]; 1 means perfectly
/// equal, 1/n means one participant takes everything. Returns 1 for empty
/// or all-zero input (vacuously fair).
double JainFairnessIndex(const std::vector<double>& v);

/// min(v) / max(v) for non-negative input; 1 for empty input, 0 when the
/// maximum is 0.
double MinMaxRatio(const std::vector<double>& v);

}  // namespace fta

#endif  // FTA_UTIL_MATH_UTIL_H_
