#ifndef FTA_GEO_TRAVEL_H_
#define FTA_GEO_TRAVEL_H_

#include "geo/point.h"
#include "util/logging.h"

namespace fta {

/// Travel-time model c(a, b) = Distance(a, b) / speed. The paper sets the
/// worker speed to 5 km/h on both datasets (1 in the intro example).
class TravelModel {
 public:
  /// Speed must be strictly positive (distance units per time unit).
  explicit TravelModel(double speed = 5.0) : speed_(speed) {
    FTA_CHECK_MSG(speed > 0.0, "speed must be > 0");
  }

  double speed() const { return speed_; }

  /// Travel time c(a, b) from location a to location b.
  double TravelTime(const Point& a, const Point& b) const {
    return Distance(a, b) / speed_;
  }

  /// Travel time corresponding to a given distance.
  double TimeForDistance(double distance) const { return distance / speed_; }

  friend bool operator==(const TravelModel& a, const TravelModel& b) {
    return a.speed_ == b.speed_;
  }

 private:
  double speed_;
};

}  // namespace fta

#endif  // FTA_GEO_TRAVEL_H_
