#ifndef FTA_GEO_DISTANCE_MATRIX_H_
#define FTA_GEO_DISTANCE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/travel.h"

namespace fta {

/// Dense pairwise travel-time matrix over a point set, plus travel times
/// from one distinguished origin (the distribution center). Precomputing
/// this once makes the VDPS dynamic program and the sequence enumerator
/// branch on array lookups only.
class DistanceMatrix {
 public:
  /// Builds the n x n travel-time matrix for `points` and the origin row
  /// (origin -> each point) under `travel`.
  DistanceMatrix(const Point& origin, const std::vector<Point>& points,
                 const TravelModel& travel);

  size_t size() const { return n_; }

  /// Travel time between points i and j.
  double Between(size_t i, size_t j) const { return times_[i * n_ + j]; }

  /// Contiguous travel-time row of point i (row-major mirror, n entries):
  /// TimeRow(i)[j] == Between(i, j). Hot loops hoist the row pointer once
  /// and stream it instead of re-deriving i * n per neighbor.
  const double* TimeRow(size_t i) const { return times_.data() + i * n_; }

  /// Travel time from the origin (distribution center) to point i.
  double FromOrigin(size_t i) const { return from_origin_[i]; }

  /// Euclidean distance (not time) between points i and j; used by the
  /// ε-pruning predicate, which the paper states in distance units.
  double DistanceBetween(size_t i, size_t j) const {
    return dists_[i * n_ + j];
  }

 private:
  size_t n_;
  std::vector<double> times_;        // n*n travel times
  std::vector<double> dists_;       // n*n distances
  std::vector<double> from_origin_;  // n origin->point travel times
};

}  // namespace fta

#endif  // FTA_GEO_DISTANCE_MATRIX_H_
