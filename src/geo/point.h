#ifndef FTA_GEO_POINT_H_
#define FTA_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace fta {

/// A 2D location. The paper's instances live in planar coordinates
/// (kilometers for SYN); distances are Euclidean.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Squared Euclidean distance (cheap; use for comparisons).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two locations.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace fta

#endif  // FTA_GEO_POINT_H_
