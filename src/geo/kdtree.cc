#include "geo/kdtree.h"

#include <algorithm>
#include <numeric>

#include "util/math_util.h"

namespace fta {

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<uint32_t> ids(points_.size());
  std::iota(ids.begin(), ids.end(), 0u);
  nodes_.reserve(points_.size());
  root_ = Build(ids, 0, ids.size(), 0);
}

int32_t KdTree::Build(std::vector<uint32_t>& ids, size_t begin, size_t end,
                      int depth) {
  if (begin >= end) return -1;
  const uint8_t axis = static_cast<uint8_t>(depth % 2);
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids.begin() + static_cast<ptrdiff_t>(begin),
                   ids.begin() + static_cast<ptrdiff_t>(mid),
                   ids.begin() + static_cast<ptrdiff_t>(end),
                   [&](uint32_t a, uint32_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{-1, -1, ids[mid], axis});
  const int32_t left = Build(ids, begin, mid, depth + 1);
  const int32_t right = Build(ids, mid + 1, end, depth + 1);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

int64_t KdTree::Nearest(const Point& query) const {
  if (root_ < 0) return -1;
  double best_d2 = kInfinity;
  int64_t best_id = -1;
  NearestRec(root_, query, best_d2, best_id);
  return best_id;
}

void KdTree::NearestRec(int32_t node, const Point& query, double& best_d2,
                        int64_t& best_id) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Point& p = points_[n.point_id];
  const double d2 = SquaredDistance(p, query);
  if (d2 < best_d2) {
    best_d2 = d2;
    best_id = n.point_id;
  }
  const double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_side = delta < 0 ? n.left : n.right;
  const int32_t far_side = delta < 0 ? n.right : n.left;
  NearestRec(near_side, query, best_d2, best_id);
  if (delta * delta < best_d2) NearestRec(far_side, query, best_d2, best_id);
}

std::vector<uint32_t> KdTree::KNearest(const Point& query, size_t k) const {
  std::vector<std::pair<double, uint32_t>> heap;  // max-heap on distance
  if (root_ >= 0 && k > 0) KNearestRec(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<uint32_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, id] : heap) out.push_back(id);
  return out;
}

void KdTree::KNearestRec(
    int32_t node, const Point& query, size_t k,
    std::vector<std::pair<double, uint32_t>>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Point& p = points_[n.point_id];
  const double d2 = SquaredDistance(p, query);
  if (heap.size() < k) {
    heap.emplace_back(d2, n.point_id);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, n.point_id};
    std::push_heap(heap.begin(), heap.end());
  }
  const double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_side = delta < 0 ? n.left : n.right;
  const int32_t far_side = delta < 0 ? n.right : n.left;
  KNearestRec(near_side, query, k, heap);
  if (heap.size() < k || delta * delta < heap.front().first) {
    KNearestRec(far_side, query, k, heap);
  }
}

std::vector<uint32_t> KdTree::RadiusQuery(const Point& query,
                                          double radius) const {
  std::vector<uint32_t> out;
  if (root_ >= 0 && radius >= 0.0) {
    RadiusRec(root_, query, radius * radius, out);
    std::sort(out.begin(), out.end());
  }
  return out;
}

void KdTree::RadiusRec(int32_t node, const Point& query, double r2,
                       std::vector<uint32_t>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Point& p = points_[n.point_id];
  if (SquaredDistance(p, query) <= r2) out.push_back(n.point_id);
  const double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_side = delta < 0 ? n.left : n.right;
  const int32_t far_side = delta < 0 ? n.right : n.left;
  RadiusRec(near_side, query, r2, out);
  if (delta * delta <= r2) RadiusRec(far_side, query, r2, out);
}

}  // namespace fta
