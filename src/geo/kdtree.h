#ifndef FTA_GEO_KDTREE_H_
#define FTA_GEO_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace fta {

/// Static 2D k-d tree over a point set. Supports nearest-neighbor, k-NN and
/// radius queries. Used by k-means assignment steps and by data-prep
/// pipelines; the grid index is preferred for the hot ε-pruning path.
class KdTree {
 public:
  /// Builds a balanced tree (median splits) over `points`.
  explicit KdTree(std::vector<Point> points);

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

  /// Index of the nearest point to `query`; -1 for an empty tree.
  int64_t Nearest(const Point& query) const;

  /// Indices of the k nearest points, closest first. Returns fewer than k
  /// if the tree is smaller.
  std::vector<uint32_t> KNearest(const Point& query, size_t k) const;

  /// Indices of all points within `radius` (inclusive), ascending order.
  std::vector<uint32_t> RadiusQuery(const Point& query, double radius) const;

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    uint32_t point_id = 0;
    uint8_t axis = 0;
  };

  int32_t Build(std::vector<uint32_t>& ids, size_t begin, size_t end,
                int depth);
  void NearestRec(int32_t node, const Point& query, double& best_d2,
                  int64_t& best_id) const;
  void KNearestRec(int32_t node, const Point& query, size_t k,
                   std::vector<std::pair<double, uint32_t>>& heap) const;
  void RadiusRec(int32_t node, const Point& query, double r2,
                 std::vector<uint32_t>& out) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace fta

#endif  // FTA_GEO_KDTREE_H_
