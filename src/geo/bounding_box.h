#ifndef FTA_GEO_BOUNDING_BOX_H_
#define FTA_GEO_BOUNDING_BOX_H_

#include <algorithm>
#include <vector>

#include "geo/point.h"

namespace fta {

/// Axis-aligned bounding box. Default-constructed boxes are empty and can be
/// grown with Extend().
class BoundingBox {
 public:
  /// Creates an empty (inverted) box.
  BoundingBox() = default;
  /// Creates a box spanning the two corners (in any order).
  BoundingBox(const Point& a, const Point& b)
      : min_{std::min(a.x, b.x), std::min(a.y, b.y)},
        max_{std::max(a.x, b.x), std::max(a.y, b.y)} {}

  /// Tightest box around a point set; empty box for an empty set.
  static BoundingBox Of(const std::vector<Point>& points) {
    BoundingBox box;
    for (const Point& p : points) box.Extend(p);
    return box;
  }

  bool empty() const { return min_.x > max_.x; }

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

  double width() const { return empty() ? 0.0 : max_.x - min_.x; }
  double height() const { return empty() ? 0.0 : max_.y - min_.y; }

  /// Grows the box to cover p.
  void Extend(const Point& p) {
    min_.x = std::min(min_.x, p.x);
    min_.y = std::min(min_.y, p.y);
    max_.x = std::max(max_.x, p.x);
    max_.y = std::max(max_.y, p.y);
  }

  /// Grows the box by `margin` on every side.
  void Inflate(double margin) {
    if (empty()) return;
    min_.x -= margin;
    min_.y -= margin;
    max_.x += margin;
    max_.y += margin;
  }

  /// True if p lies inside or on the border.
  bool Contains(const Point& p) const {
    return !empty() && p.x >= min_.x && p.x <= max_.x && p.y >= min_.y &&
           p.y <= max_.y;
  }

  /// Smallest distance from p to the box (0 if inside).
  double Distance(const Point& p) const {
    if (empty()) return kEmptyDistance;
    const double dx = std::max({min_.x - p.x, 0.0, p.x - max_.x});
    const double dy = std::max({min_.y - p.y, 0.0, p.y - max_.y});
    return std::sqrt(dx * dx + dy * dy);
  }

 private:
  static constexpr double kEmptyDistance = 1e300;
  Point min_{1.0, 1.0};
  Point max_{-1.0, -1.0};  // inverted => empty
};

}  // namespace fta

#endif  // FTA_GEO_BOUNDING_BOX_H_
