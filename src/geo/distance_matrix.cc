#include "geo/distance_matrix.h"

namespace fta {

DistanceMatrix::DistanceMatrix(const Point& origin,
                               const std::vector<Point>& points,
                               const TravelModel& travel)
    : n_(points.size()) {
  times_.resize(n_ * n_);
  dists_.resize(n_ * n_);
  from_origin_.resize(n_);
  for (size_t i = 0; i < n_; ++i) {
    from_origin_[i] = travel.TravelTime(origin, points[i]);
    times_[i * n_ + i] = 0.0;
    dists_[i * n_ + i] = 0.0;
    for (size_t j = i + 1; j < n_; ++j) {
      const double d = Distance(points[i], points[j]);
      const double t = travel.TimeForDistance(d);
      dists_[i * n_ + j] = d;
      dists_[j * n_ + i] = d;
      times_[i * n_ + j] = t;
      times_[j * n_ + i] = t;
    }
  }
}

}  // namespace fta
