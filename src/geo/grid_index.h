#ifndef FTA_GEO_GRID_INDEX_H_
#define FTA_GEO_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/point.h"

namespace fta {

/// Uniform grid over a point set, supporting radius queries. This is the
/// index behind the distance-constrained pruning strategy of Section IV:
/// D(dp_j) = { dp_q : d(dp_j, dp_q) <= epsilon } is one RadiusQuery.
///
/// The grid is immutable after construction; cell size defaults to the query
/// radius the caller expects (pass it explicitly for best performance).
class GridIndex {
 public:
  /// Builds an index over `points`. `cell_size` <= 0 picks a heuristic cell
  /// size (~sqrt(area / n)).
  explicit GridIndex(std::vector<Point> points, double cell_size = 0.0);

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  double cell_size() const { return cell_size_; }

  /// Indices of all points within `radius` of `center` (inclusive), in
  /// ascending index order. Includes the query point itself if it is in the
  /// set and within the radius.
  std::vector<uint32_t> RadiusQuery(const Point& center, double radius) const;

  /// Index of the nearest point to `center`, or -1 for an empty index.
  int64_t Nearest(const Point& center) const;

 private:
  struct Cell {
    uint32_t begin = 0;  // range into sorted_ids_
    uint32_t end = 0;
  };

  int64_t CellX(double x) const;
  int64_t CellY(double y) const;
  const Cell& CellAt(int64_t cx, int64_t cy) const;

  std::vector<Point> points_;
  BoundingBox bounds_;
  double cell_size_ = 1.0;
  int64_t nx_ = 0;
  int64_t ny_ = 0;
  std::vector<Cell> cells_;          // nx_ * ny_ cells, row-major
  std::vector<uint32_t> sorted_ids_;  // point ids grouped by cell
};

}  // namespace fta

#endif  // FTA_GEO_GRID_INDEX_H_
