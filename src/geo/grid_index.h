#ifndef FTA_GEO_GRID_INDEX_H_
#define FTA_GEO_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/point.h"

namespace fta {

class ThreadPool;

/// Precomputed ε-neighborhoods of a point set in CSR layout: row j holds
/// the ids of every point within the build radius of point j, ascending
/// (including j itself). One radius query per point, paid once — inner
/// loops that would otherwise re-run RadiusQuery (or scan all n points and
/// re-check distances) iterate the row instead.
struct RadiusAdjacency {
  std::vector<uint32_t> offsets;    // size n + 1
  std::vector<uint32_t> neighbors;  // CSR payload, ascending per row

  size_t num_points() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  /// Total neighbor-list length (Σ row degrees).
  size_t num_pairs() const { return neighbors.size(); }
  size_t degree(uint32_t j) const { return offsets[j + 1] - offsets[j]; }
  const uint32_t* begin(uint32_t j) const {
    return neighbors.data() + offsets[j];
  }
  const uint32_t* end(uint32_t j) const {
    return neighbors.data() + offsets[j + 1];
  }
};

/// Uniform grid over a point set, supporting radius queries. This is the
/// index behind the distance-constrained pruning strategy of Section IV:
/// D(dp_j) = { dp_q : d(dp_j, dp_q) <= epsilon } is one RadiusQuery.
///
/// The grid is immutable after construction; cell size defaults to the query
/// radius the caller expects (pass it explicitly for best performance).
class GridIndex {
 public:
  /// Builds an index over `points`. `cell_size` <= 0 picks a heuristic cell
  /// size (~sqrt(area / n)).
  explicit GridIndex(std::vector<Point> points, double cell_size = 0.0);

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  double cell_size() const { return cell_size_; }

  /// Indices of all points within `radius` of `center` (inclusive), in
  /// ascending index order. Includes the query point itself if it is in the
  /// set and within the radius.
  std::vector<uint32_t> RadiusQuery(const Point& center, double radius) const;

  /// Index of the nearest point to `center`, or -1 for an empty index.
  int64_t Nearest(const Point& center) const;

  /// Builds the full ε-neighbor adjacency (one RadiusQuery per point).
  /// Rows are computed independently, so a non-null `pool` fans the build
  /// out across its threads; the result is identical either way.
  RadiusAdjacency BuildRadiusAdjacency(double radius,
                                       ThreadPool* pool = nullptr) const;

 private:
  struct Cell {
    uint32_t begin = 0;  // range into sorted_ids_
    uint32_t end = 0;
  };

  int64_t CellX(double x) const;
  int64_t CellY(double y) const;
  const Cell& CellAt(int64_t cx, int64_t cy) const;

  std::vector<Point> points_;
  BoundingBox bounds_;
  double cell_size_ = 1.0;
  int64_t nx_ = 0;
  int64_t ny_ = 0;
  std::vector<Cell> cells_;          // nx_ * ny_ cells, row-major
  std::vector<uint32_t> sorted_ids_;  // point ids grouped by cell
};

}  // namespace fta

#endif  // FTA_GEO_GRID_INDEX_H_
