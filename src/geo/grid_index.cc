#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace fta {

GridIndex::GridIndex(std::vector<Point> points, double cell_size)
    : points_(std::move(points)), bounds_(BoundingBox::Of(points_)) {
  const size_t n = points_.size();
  if (n == 0) {
    cell_size_ = 1.0;
    nx_ = ny_ = 1;
    cells_.assign(1, Cell{});
    return;
  }
  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    const double area =
        std::max(bounds_.width() * bounds_.height(), 1e-12);
    cell_size_ = std::max(std::sqrt(area / static_cast<double>(n)), 1e-6);
  }
  nx_ = std::max<int64_t>(
      1, static_cast<int64_t>(bounds_.width() / cell_size_) + 1);
  ny_ = std::max<int64_t>(
      1, static_cast<int64_t>(bounds_.height() / cell_size_) + 1);
  // Cap the grid to keep memory bounded for degenerate cell sizes.
  constexpr int64_t kMaxCellsPerAxis = 4096;
  nx_ = std::min(nx_, kMaxCellsPerAxis);
  ny_ = std::min(ny_, kMaxCellsPerAxis);

  // Counting sort of point ids into cells.
  std::vector<uint32_t> cell_of(n);
  std::vector<uint32_t> counts(static_cast<size_t>(nx_ * ny_) + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t cx = CellX(points_[i].x);
    const int64_t cy = CellY(points_[i].y);
    cell_of[i] = static_cast<uint32_t>(cy * nx_ + cx);
    ++counts[cell_of[i] + 1];
  }
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  sorted_ids_.resize(n);
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (uint32_t i = 0; i < n; ++i) sorted_ids_[cursor[cell_of[i]]++] = i;

  cells_.resize(static_cast<size_t>(nx_ * ny_));
  for (int64_t c = 0; c < nx_ * ny_; ++c) {
    cells_[static_cast<size_t>(c)] = Cell{counts[static_cast<size_t>(c)],
                                          counts[static_cast<size_t>(c) + 1]};
  }
}

int64_t GridIndex::CellX(double x) const {
  if (bounds_.empty()) return 0;
  int64_t c = static_cast<int64_t>((x - bounds_.min().x) / cell_size_);
  return std::clamp<int64_t>(c, 0, nx_ - 1);
}

int64_t GridIndex::CellY(double y) const {
  if (bounds_.empty()) return 0;
  int64_t c = static_cast<int64_t>((y - bounds_.min().y) / cell_size_);
  return std::clamp<int64_t>(c, 0, ny_ - 1);
}

const GridIndex::Cell& GridIndex::CellAt(int64_t cx, int64_t cy) const {
  return cells_[static_cast<size_t>(cy * nx_ + cx)];
}

std::vector<uint32_t> GridIndex::RadiusQuery(const Point& center,
                                             double radius) const {
  std::vector<uint32_t> out;
  if (points_.empty() || radius < 0.0) return out;
  const double r2 = radius * radius;
  const int64_t cx_lo = CellX(center.x - radius);
  const int64_t cx_hi = CellX(center.x + radius);
  const int64_t cy_lo = CellY(center.y - radius);
  const int64_t cy_hi = CellY(center.y + radius);
  for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const Cell& cell = CellAt(cx, cy);
      for (uint32_t k = cell.begin; k < cell.end; ++k) {
        const uint32_t id = sorted_ids_[k];
        if (SquaredDistance(points_[id], center) <= r2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

RadiusAdjacency GridIndex::BuildRadiusAdjacency(double radius,
                                                ThreadPool* pool) const {
  const size_t n = points_.size();
  std::vector<std::vector<uint32_t>> rows(n);
  const auto build_row = [&](size_t j) {
    rows[j] = RadiusQuery(points_[j], radius);
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->RunBatch(n, build_row);
  } else {
    for (size_t j = 0; j < n; ++j) build_row(j);
  }

  RadiusAdjacency adj;
  adj.offsets.resize(n + 1, 0);
  for (size_t j = 0; j < n; ++j) {
    adj.offsets[j + 1] =
        adj.offsets[j] + static_cast<uint32_t>(rows[j].size());
  }
  adj.neighbors.reserve(adj.offsets[n]);
  for (size_t j = 0; j < n; ++j) {
    adj.neighbors.insert(adj.neighbors.end(), rows[j].begin(), rows[j].end());
  }
  return adj;
}

int64_t GridIndex::Nearest(const Point& center) const {
  if (points_.empty()) return -1;
  // Expand rings of cells until a hit is found, then verify one more ring
  // (a closer point can live in a neighboring ring's corner).
  int64_t best = -1;
  double best_d2 = kInfinity;
  const int64_t cx0 = CellX(center.x);
  const int64_t cy0 = CellY(center.y);
  const int64_t max_ring = std::max(nx_, ny_);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    bool scanned_any = false;
    for (int64_t cy = cy0 - ring; cy <= cy0 + ring; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int64_t cx = cx0 - ring; cx <= cx0 + ring; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring border; interior was scanned in earlier rings.
        if (ring > 0 && std::abs(cx - cx0) != ring && std::abs(cy - cy0) != ring)
          continue;
        scanned_any = true;
        const Cell& cell = CellAt(cx, cy);
        for (uint32_t k = cell.begin; k < cell.end; ++k) {
          const uint32_t id = sorted_ids_[k];
          const double d2 = SquaredDistance(points_[id], center);
          if (d2 < best_d2) {
            best_d2 = d2;
            best = id;
          }
        }
      }
    }
    if (best >= 0) {
      // A point in ring r guarantees no point beyond ring r+1 can be closer.
      const double safe = static_cast<double>(ring) * cell_size_;
      if (best_d2 <= safe * safe || ring == max_ring) break;
    }
    if (!scanned_any && ring > 0 && best >= 0) break;
  }
  return best;
}

}  // namespace fta
